// The -proxy mode drives the full core-local edge: pipelined keep-alive
// clients → proxyaff reverse proxy → in-process httpaff backends, all
// over real loopback TCP. On top of the -http report it prints the
// upstream pool reuse rate — the proof that the outbound half of each
// request stayed on the worker that served the inbound half.
package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"affinityaccept/httpaff"
	"affinityaccept/proxyaff"
)

// proxyOpts carries the -proxy flag values.
type proxyOpts struct {
	httpOpts
	backends int  // in-process backend servers
	pinned   bool // worker-pinned backend selection (vs round-robin)
}

func (o proxyOpts) scenario() string {
	if o.migrate {
		return "proxy-keepalive"
	}
	return "proxy-keepalive-nomigrate"
}

// runProxyBench builds the backend farm and the proxy edge, drives it
// with the -http client, and reports end-to-end req/s plus the upstream
// pool reuse breakdown.
func runProxyBench(o proxyOpts) error {
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
		if o.workers < 2 {
			o.workers = 2
		}
	}
	if o.pipeline <= 0 {
		o.pipeline = 16
	}
	if o.backends <= 0 {
		o.backends = 2
	}

	// Backend farm: plain httpaff servers answering o.payload bytes.
	body := make([]byte, o.payload)
	for i := range body {
		body[i] = 'x'
	}
	addrs := make([]string, 0, o.backends)
	backends := make([]*httpaff.Server, 0, o.backends)
	shutdownAll := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, b := range backends {
			b.Shutdown(ctx)
		}
	}
	for i := 0; i < o.backends; i++ {
		b, err := httpaff.New(httpaff.Config{
			Workers: 2,
			Handler: func(ctx *httpaff.RequestCtx) { ctx.Write(body) },
		})
		if err != nil {
			shutdownAll()
			return err
		}
		b.Start()
		backends = append(backends, b)
		addrs = append(addrs, b.Addr().String())
	}
	defer shutdownAll()

	policy := proxyaff.RoundRobin
	policyName := "round-robin"
	if o.pinned {
		policy = proxyaff.WorkerPinned
		policyName = "worker-pinned"
	}
	proxy, err := proxyaff.New(proxyaff.Config{
		Backends: addrs,
		Policy:   policy,
		Workers:  o.workers,
	})
	if err != nil {
		return err
	}
	front, err := httpaff.New(httpaff.Config{
		Addr:             o.addr,
		Workers:          o.workers,
		Handler:          proxy.Serve,
		WorkerUpstream:   proxy.PoolSnapshot,
		DisableReusePort: o.noShard,
		FlowGroups:       o.groups,
		MigrateInterval:  o.migrateEvery,
		DisableMigration: !o.migrate,
	})
	if err != nil {
		return err
	}
	front.Start()
	target := front.Addr().String()
	mode := "shared listener"
	if front.Sharded() {
		mode = "SO_REUSEPORT shards"
	}
	migr := "off"
	if o.migrate {
		migr = "on"
	}
	fmt.Printf("proxyaff edge on %s: %d workers, %s, migration %s, %d backends (%s)\n",
		target, o.workers, mode, migr, o.backends, policyName)

	lat, requests, failed := driveHTTP(target, o.httpOpts)
	secs := o.duration.Seconds()

	fmt.Println()
	fmt.Printf("PROXY — pipelined keep-alive through the edge (%d conns, %d reqs/batch, %dB body)\n",
		o.clients, o.pipeline, o.payload)
	header := []string{"workers", "backends", "conns", "pipeline", "secs", "req/s", "p50(us)", "p95(us)", "p99(us)", "failed"}
	row := []string{
		fmt.Sprintf("%d", o.workers),
		fmt.Sprintf("%d", o.backends),
		fmt.Sprintf("%d", o.clients),
		fmt.Sprintf("%d", o.pipeline),
		fmt.Sprintf("%.1f", secs),
		fmt.Sprintf("%.0f", float64(requests)/secs),
		fmt.Sprintf("%.0f", percentile(lat, 50)),
		fmt.Sprintf("%.0f", percentile(lat, 95)),
		fmt.Sprintf("%.0f", percentile(lat, 99)),
		fmt.Sprintf("%d", failed),
	}
	printAligned(header, [][]string{row})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := front.Shutdown(ctx); err != nil {
		fmt.Println("shutdown:", err)
	}
	st := front.Stats()
	proxy.Close()
	fmt.Println()
	fmt.Printf("locality: %.1f%% of %d handler passes on the owning worker; ctx pool reuse: %.1f%%\n",
		st.LocalityPct(), st.Served, st.Pool.ReusePct())
	fmt.Printf("upstream: %.1f%% of %d checkouts reused from the worker-local pool (%d dials, %d drops)\n",
		st.Upstream.ReusePct(), st.Upstream.Gets(), st.Upstream.Misses, st.Upstream.Drops)
	fmt.Printf("keep-alive: %d requeues, %d flow-group migrations\n", st.Requeued, st.Migrations)
	fmt.Print(st)

	rep := benchReport{
		Scenario:         o.scenario(),
		Workers:          o.workers,
		Clients:          o.clients,
		Pipeline:         o.pipeline,
		Backends:         o.backends,
		DurationSecs:     secs,
		ReqPerSec:        float64(requests) / secs,
		P50us:            percentile(lat, 50),
		P95us:            percentile(lat, 95),
		P99us:            percentile(lat, 99),
		Failed:           failed,
		Sharded:          st.Sharded,
		MigrationOn:      o.migrate,
		LocalityPct:      st.LocalityPct(),
		StealPct:         st.StealPct(),
		Migrations:       st.Migrations,
		Requeued:         st.Requeued,
		Dropped:          st.Dropped,
		PoolGets:         st.Pool.Gets(),
		PoolMisses:       st.Pool.Misses,
		PoolReusePct:     st.Pool.ReusePct(),
		UpstreamGets:     st.Upstream.Gets(),
		UpstreamMisses:   st.Upstream.Misses,
		UpstreamReusePct: st.Upstream.ReusePct(),
	}
	rep.fillEnv()
	if o.jsonPath != "" {
		if err := appendJSONReport(o.jsonPath, rep); err != nil {
			return fmt.Errorf("write %s: %w", o.jsonPath, err)
		}
		fmt.Printf("\nappended %q record to %s\n", rep.Scenario, o.jsonPath)
	}
	return nil
}
