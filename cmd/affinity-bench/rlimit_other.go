//go:build !unix

package main

// raiseFDLimit is a no-op without unix rlimits.
func raiseFDLimit() uint64 { return 0 }
