// The -ws mode drives the wsaff WebSocket layer: long-lived upgraded
// connections with skewed traffic (every active connection's flow group
// initially owned by worker 0, the §3.3.2 problem shape), an optional
// held-open population of mostly-idle subscribed sockets, and an
// optional broadcast publisher. It reports echo throughput, locality
// after migration, the held/parked population, and the wsaff counters
// (frames, pings, broadcasts, codec-pool reuse).
package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept/httpaff"
	"affinityaccept/internal/loadgen"
	"affinityaccept/wsaff"
)

// wsOpts carries the -ws flag values.
type wsOpts struct {
	addr     string
	workers  int
	conns    int // active echo connections (skewed onto worker 0's groups)
	held     int // held-open idle subscribed connections
	payload  int
	duration time.Duration
	work     time.Duration // per-message service time
	noShard  bool

	broadcastEvery time.Duration // publish period (0 = no broadcasts)

	migrate      bool
	migrateEvery time.Duration
	groups       int
	jsonPath     string

	// scenarioName overrides the recorded scenario (the -scenario flag):
	// CI records the held-socket run as "ws-held" so trend tooling keyed
	// on "ws-echo" keeps reading the echo-throughput runs.
	scenarioName string
}

func (o wsOpts) scenario() string {
	if o.scenarioName != "" {
		return o.scenarioName
	}
	if o.migrate {
		return "ws-echo"
	}
	return "ws-echo-nomigrate"
}

// runWSBench starts an httpaff+wsaff echo server and drives it with
// skewed long-lived WebSocket clients.
func runWSBench(o wsOpts) error {
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
		if o.workers < 2 {
			o.workers = 2
		}
	}
	if o.groups == 0 {
		o.groups = 64 // compact enough to read, fine-grained enough to migrate
	}
	if fds := raiseFDLimit(); fds > 0 && uint64(2*(o.conns+o.held)+64) > fds {
		return fmt.Errorf("-ws with %d connections needs ~%d file descriptors (two per loopback conn); the limit is %d — lower -held or raise ulimit -n",
			o.conns+o.held, 2*(o.conns+o.held)+64, fds)
	}
	ws, err := wsaff.New(wsaff.Config{
		Workers: o.workers,
		OnOpen:  func(c *wsaff.Conn) { c.Subscribe() },
		OnMessage: func(c *wsaff.Conn, op wsaff.Op, payload []byte) {
			if o.work > 0 {
				time.Sleep(o.work)
			}
			c.Send(op, payload)
		},
	})
	if err != nil {
		return err
	}
	ws.Start()
	srv, err := httpaff.New(httpaff.Config{
		Addr:             o.addr,
		Workers:          o.workers,
		DisableReusePort: o.noShard,
		FlowGroups:       o.groups,
		MigrateInterval:  o.migrateEvery,
		DisableMigration: !o.migrate,
		// The skewed keep-alive queue must cross the busy watermark for
		// stealing (and therefore migration) to engage.
		Backlog: o.workers * 64,
		HighPct: 20, LowPct: 5,
		Handler: func(ctx *httpaff.RequestCtx) { ws.Upgrade(ctx) },
	})
	if err != nil {
		return err
	}
	srv.Start()
	target := srv.Addr().String()
	mode := "shared listener"
	if srv.Sharded() {
		mode = "SO_REUSEPORT shards"
	}
	migr := "off"
	if o.migrate {
		migr = "on"
	}
	fmt.Printf("wsaff on %s: %d workers, %s, %d flow groups, migration %s\n",
		target, o.workers, mode, srv.FlowGroups(), migr)

	// Skew: active connections dial from source ports hashing into flow
	// groups initially owned by worker 0.
	groups := 1
	for groups < o.groups {
		groups <<= 1
	}
	base := loadgen.PortBase(groups)
	var hot []int
	for g := 0; g < groups; g++ {
		if srv.OwnerOf(uint16(base+g)) == 0 {
			hot = append(hot, g)
		}
	}
	if len(hot) == 0 {
		hot = []int{0}
	}

	var mu sync.Mutex
	var lat []float64
	var reqN, failN, heldN, bcastGot atomic.Uint64
	var wg sync.WaitGroup

	// Held-open population: upgraded, subscribed (OnOpen), then idle —
	// they only answer pings and drain broadcasts. Dialed plainly so
	// they spread over all workers, like a real fleet of mostly-idle
	// clients; dialed concurrently (bounded) so a 10k population builds
	// in seconds, before the measurement window opens. Source IPs
	// rotate through 127.0.0.0/8 every 20k connections: one loopback
	// address has only ~28k ephemeral ports against a single listener,
	// so a 100k+ population needs several — Linux answers for the whole
	// /8 without configuration.
	var heldWG, dialWG sync.WaitGroup
	var heldMu sync.Mutex
	heldClients := make([]*wsaff.Client, 0, o.held)
	dialSem := make(chan struct{}, 64)
	for i := 0; i < o.held; i++ {
		dialWG.Add(1)
		dialSem <- struct{}{}
		src := i / 20000
		go func() {
			defer dialWG.Done()
			defer func() { <-dialSem }()
			d := net.Dialer{LocalAddr: &net.TCPAddr{
				IP: net.IPv4(127, 0, byte(src>>8), byte(1+src&0xff)),
			}}
			nc, err := d.Dial("tcp", target)
			if err != nil {
				failN.Add(1)
				return
			}
			c, err := wsaff.NewClient(nc, "/")
			if err != nil {
				nc.Close()
				failN.Add(1)
				return
			}
			heldN.Add(1)
			c.NetConn().SetDeadline(time.Now().Add(o.duration + 60*time.Second))
			// One send opens the conn server-side (OnOpen → Subscribe).
			if err := c.Send(wsaff.OpText, []byte("hold")); err != nil {
				c.Close()
				failN.Add(1)
				return
			}
			heldMu.Lock()
			heldClients = append(heldClients, c)
			heldMu.Unlock()
			// A reader goroutine exists only when broadcasts will arrive.
			// With no publisher a held client is pure socket: the bench
			// process itself then demonstrates the O(workers) goroutine
			// bound the event loop buys — CI asserts the sampled count.
			// (Server pings start at 30s, past any bench window, so an
			// unread socket never misses a pong within the run.)
			if o.broadcastEvery > 0 {
				heldWG.Add(1)
				go func() {
					defer heldWG.Done()
					for {
						op, _, err := c.ReadMessage() // auto-pongs pings
						if err != nil || op == wsaff.OpClose {
							return
						}
						bcastGot.Add(1)
					}
				}()
			}
		}()
	}
	dialWG.Wait()
	// The measurement window opens only now that the held population is
	// parked, so frames/s measures the echo path, not the dial phase.
	stop := time.Now().Add(o.duration)

	// Broadcast publisher. The fill byte distinguishes broadcast frames
	// from echo frames, so the closed-loop clients can skip interleaved
	// broadcasts instead of mistaking one for their echo.
	bcastStop := make(chan struct{})
	if o.broadcastEvery > 0 {
		payload := bytes.Repeat([]byte{'b'}, o.payload)
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(o.broadcastEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					ws.Broadcast(wsaff.OpBinary, payload)
				case <-bcastStop:
					return
				}
			}
		}()
	}

	// Active skewed echo clients.
	for i := 0; i < o.conns; i++ {
		nc, err := loadgen.DialGroup(target, hot[i%len(hot)], groups)
		if err != nil {
			failN.Add(1)
			continue
		}
		c, err := wsaff.NewClient(nc, "/")
		if err != nil {
			nc.Close()
			failN.Add(1)
			continue
		}
		c.NetConn().SetDeadline(time.Now().Add(o.duration + 30*time.Second))
		wg.Add(1)
		go func(c *wsaff.Client) {
			defer wg.Done()
			defer c.Close()
			msg := bytes.Repeat([]byte{'e'}, o.payload)
			local := make([]float64, 0, 4096)
			defer func() {
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}()
			for time.Now().Before(stop) {
				t0 := time.Now()
				if _, err := c.Echo(wsaff.OpBinary, msg); err != nil {
					failN.Add(1)
					return
				}
				local = append(local, float64(time.Since(t0).Microseconds()))
				reqN.Add(1)
			}
		}(c)
	}

	// Wait for the echo window, then stop broadcasting and release the
	// held population.
	for time.Now().Before(stop) {
		time.Sleep(10 * time.Millisecond)
	}
	// Sample the process goroutine count while the held population is at
	// its peak: with the event loop parking conns, the total is
	// O(workers) + O(active clients), never O(held). Also record the
	// worst per-worker coarse-clock staleness (bounded by the loops'
	// poll interval).
	goroutines := runtime.NumGoroutine()
	var clockLagUs float64
	tr := srv.Transport()
	for i := 0; i < o.workers; i++ {
		if lag := float64(time.Since(tr.CoarseNow(i)).Microseconds()); lag > clockLagUs {
			clockLagUs = lag
		}
	}
	close(bcastStop)
	wg.Wait()
	parked := srv.Transport().Parked()
	wsStats := ws.Stats()
	for _, c := range heldClients {
		c.Close()
	}
	heldWG.Wait()

	secs := o.duration.Seconds()
	requests := reqN.Load()
	fmt.Println()
	fmt.Printf("WS — skewed long-lived echo over loopback (%d active conns on worker 0's groups, %d held-open subscribed, %dB frames, %v work/msg)\n",
		o.conns, heldN.Load(), o.payload, o.work)
	header := []string{"workers", "active", "held", "secs", "frames/s", "p50(us)", "p95(us)", "p99(us)", "failed"}
	row := []string{
		fmt.Sprintf("%d", o.workers),
		fmt.Sprintf("%d", o.conns),
		fmt.Sprintf("%d", heldN.Load()),
		fmt.Sprintf("%.1f", secs),
		fmt.Sprintf("%.0f", float64(requests)/secs),
		fmt.Sprintf("%.0f", percentile(lat, 50)),
		fmt.Sprintf("%.0f", percentile(lat, 95)),
		fmt.Sprintf("%.0f", percentile(lat, 99)),
		fmt.Sprintf("%d", failN.Load()),
	}
	printAligned(header, [][]string{row})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Println("shutdown:", err)
	}
	ws.Close()
	st := srv.Stats()
	fmt.Println()
	fmt.Printf("locality: %.1f%% of %d passes on the owning worker; %d migrations, %d requeues, %d parked at window end\n",
		st.LocalityPct(), st.Served, st.Migrations, st.Requeued, parked)
	fmt.Printf("process: %d goroutines with %d sockets held open; coarse clock at most %.0fus stale\n",
		goroutines, heldN.Load(), clockLagUs)
	fmt.Printf("wsaff: %d frames in / %d out, %d pings, %d pongs, %d broadcasts (%d delivered, %d shard drops), codec reuse %.1f%%\n",
		wsStats.FramesIn, wsStats.FramesOut, wsStats.PingsSent, wsStats.PongsReceived,
		wsStats.Broadcasts, wsStats.Delivered, wsStats.Dropped, wsStats.Pool.ReusePct())
	fmt.Print(st)

	rep := benchReport{
		Scenario:     o.scenario(),
		Workers:      o.workers,
		Clients:      o.conns,
		LongLived:    o.conns + int(heldN.Load()),
		DurationSecs: secs,
		ReqPerSec:    float64(requests) / secs,
		P50us:        percentile(lat, 50),
		P95us:        percentile(lat, 95),
		P99us:        percentile(lat, 99),
		Failed:       failN.Load(),
		Sharded:      st.Sharded,
		MigrationOn:  o.migrate,
		LocalityPct:  st.LocalityPct(),
		StealPct:     st.StealPct(),
		Migrations:   st.Migrations,
		Requeued:     st.Requeued,
		Dropped:      st.Dropped,
		PoolGets:     wsStats.Pool.Gets(),
		PoolMisses:   wsStats.Pool.Misses,
		PoolReusePct: wsStats.Pool.ReusePct(),
		WSHeld:       heldN.Load(),
		WSParked:     parked,
		WSFramesIn:   wsStats.FramesIn,
		WSFramesOut:  wsStats.FramesOut,
		WSPings:      wsStats.PingsSent,
		WSPongs:      wsStats.PongsReceived,
		WSBroadcasts: wsStats.Broadcasts,
		WSDelivered:  wsStats.Delivered,
		WSReceived:   bcastGot.Load(),

		HeldConns:        heldN.Load(),
		Goroutines:       goroutines,
		CoarseClockLagUs: clockLagUs,
	}
	rep.fillEnv()
	if o.jsonPath != "" {
		if err := appendJSONReport(o.jsonPath, rep); err != nil {
			return fmt.Errorf("write %s: %w", o.jsonPath, err)
		}
		fmt.Printf("\nappended %q record to %s\n", rep.Scenario, o.jsonPath)
	}
	return nil
}
