module affinityaccept

go 1.24
