package httpaff

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"affinityaccept/internal/obs"
)

// TestServiceLatencyHistogram drives real requests through the server
// and checks the request-path histograms observed them: nonzero count,
// plausible latencies, request/response sizes that bracket the actual
// wire traffic.
func TestServiceLatencyHistogram(t *testing.T) {
	s := start(t, Config{Workers: 2})
	conn, br := dial(t, s)

	const rounds = 8
	for i := 0; i < rounds; i++ {
		fmt.Fprintf(conn, "GET /obs HTTP/1.1\r\nHost: x\r\n\r\n")
		code, _, body := readResponse(t, br)
		if code != 200 || string(body) != "/obs" {
			t.Fatalf("round %d: got %d %q", i, code, body)
		}
	}

	m := s.mergedSvc()
	if m.Count != rounds {
		t.Fatalf("service histogram count %d, want %d", m.Count, rounds)
	}
	qs := s.ServiceLatencyQuantiles(0.5, 0.99, 0.999)
	if len(qs) != 3 {
		t.Fatalf("got %d quantiles", len(qs))
	}
	for i, q := range qs {
		if q <= 0 || q > 5*time.Second {
			t.Errorf("quantile %d = %v, not plausible for a loopback echo", i, q)
		}
	}
	if qs[0] > qs[2] {
		t.Errorf("p50 %v > p999 %v", qs[0], qs[2])
	}

	// The request was 28 bytes on the wire; the log-bucketed histogram
	// may round up by its relative error but never below the true size.
	req := s.obsw[0].reqBytes.Snapshot()
	for i := 1; i < len(s.obsw); i++ {
		req.Merge(s.obsw[i].reqBytes.Snapshot())
	}
	if req.Count != rounds {
		t.Fatalf("request-size count %d, want %d", req.Count, rounds)
	}
	if lo, hi := req.Quantile(0), req.Quantile(1); lo < 28 || hi > 64 {
		t.Errorf("request sizes [%d, %d], want around the 28-byte request", lo, hi)
	}
}

// TestObsSampling pins the ObsSampleShift contract: with shift n only
// one pass in 2^n lands in the histograms.
func TestObsSampling(t *testing.T) {
	s := start(t, Config{Workers: 1, ObsSampleShift: 2})
	conn, br := dial(t, s)
	for i := 0; i < 8; i++ {
		fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
		readResponse(t, br)
	}
	if got := s.mergedSvc().Count; got != 2 {
		t.Fatalf("shift 2 recorded %d of 8 passes, want 2", got)
	}
}

// TestObsDisabledHTTP: DisableObs zeroes the whole plane end to end —
// no histograms, no quantiles, no metrics series, no events.
func TestObsDisabledHTTP(t *testing.T) {
	s := start(t, Config{Workers: 1, DisableObs: true})
	conn, br := dial(t, s)
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	readResponse(t, br)

	if s.obsOn || s.obsw != nil {
		t.Fatal("DisableObs left the HTTP histograms live")
	}
	for _, q := range s.ServiceLatencyQuantiles(0.5, 0.99) {
		if q != 0 {
			t.Errorf("disabled server reports quantile %v", q)
		}
	}
	var b strings.Builder
	s.WriteObsMetrics(&b)
	if b.Len() != 0 {
		t.Errorf("disabled server wrote obs metrics:\n%s", b.String())
	}
	if evs := s.Events(); len(evs) != 0 {
		t.Errorf("disabled server produced %d events", len(evs))
	}
}

// TestMetricsHandlerComposes scrapes the unified /metrics endpoint over
// the wire and checks it carries all three planes — the classic
// counters, the HTTP layer's histograms, the transport's event/evloop
// series — plus an extra writer stacked in the way proxyaff and wsaff
// compose theirs.
func TestMetricsHandlerComposes(t *testing.T) {
	var s *Server
	r := NewRouter()
	r.Handle("/", echoPath)
	r.Handle("/metrics", func(ctx *RequestCtx) {
		MetricsHandler(s, func(w io.Writer) {
			fmt.Fprintf(w, "affinity_extra_series_total 7\n")
		})(ctx)
	})
	s = start(t, Config{Workers: 1, Handler: r.Serve})
	conn, br := dial(t, s)
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	readResponse(t, br)

	fmt.Fprintf(conn, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
	code, headers, body := readResponse(t, br)
	if code != 200 || !strings.HasPrefix(headers["content-type"], "text/plain") {
		t.Fatalf("/metrics: %d %q", code, headers["content-type"])
	}
	out := string(body)
	for _, series := range []string{
		"affinity_served_total{worker=\"0\",queue=\"local\"}",
		"# TYPE affinity_http_request_duration_seconds histogram",
		"affinity_http_request_duration_seconds_bucket{le=\"+Inf\"}",
		"affinity_http_request_size_bytes_sum",
		"affinity_http_response_size_bytes_count",
		"# TYPE affinity_park_duration_seconds histogram",
		"affinity_events_recorded_total",
		"affinity_clock_lag_seconds{worker=\"0\"}",
		"affinity_extra_series_total 7",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("unified metrics missing %q", series)
		}
	}
}

// TestEventsHandlerJSON mounts the /debug/events endpoint and checks it
// serves the transport's timeline: valid JSON, ordered sequence numbers,
// and at least the accept event the warm-up request generated.
func TestEventsHandlerJSON(t *testing.T) {
	var s *Server
	r := NewRouter()
	r.Handle("/", echoPath)
	r.Handle("/debug/events", func(ctx *RequestCtx) { EventsHandler(s)(ctx) })
	s = start(t, Config{Workers: 1, Handler: r.Serve})
	conn, br := dial(t, s)
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	readResponse(t, br)

	fmt.Fprintf(conn, "GET /debug/events HTTP/1.1\r\nHost: x\r\n\r\n")
	code, headers, raw := readResponse(t, br)
	if code != 200 || headers["content-type"] != "application/json" {
		t.Fatalf("/debug/events: %d %q", code, headers["content-type"])
	}
	out := string(raw)
	var body struct {
		Recorded uint64      `json:"recorded"`
		Dropped  uint64      `json:"dropped"`
		Events   []obs.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(out), &body); err != nil {
		t.Fatalf("events endpoint served invalid JSON: %v\n%s", err, out)
	}
	if body.Recorded == 0 || len(body.Events) == 0 {
		t.Fatalf("no events after a served request: recorded %d, drained %d", body.Recorded, len(body.Events))
	}
	var sawAccept bool
	for i, ev := range body.Events {
		if i > 0 && ev.Seq <= body.Events[i-1].Seq {
			t.Errorf("timeline out of order at %d: seq %d after %d", i, ev.Seq, body.Events[i-1].Seq)
		}
		if ev.Kind == obs.KindAccept {
			sawAccept = true
		}
	}
	if !sawAccept {
		t.Error("timeline has no accept event")
	}
}

// TestEventsHandlerSinceCursor pins the incremental-poll contract over
// the wire: a poller that always passes the largest Seq it has seen
// receives every event exactly once — nothing double-delivered, nothing
// skipped — however the polls interleave with new traffic.
func TestEventsHandlerSinceCursor(t *testing.T) {
	var s *Server
	r := NewRouter()
	r.Handle("/", echoPath)
	r.Handle("/debug/events", func(ctx *RequestCtx) { EventsHandler(s)(ctx) })
	s = start(t, Config{Workers: 1, Handler: r.Serve})
	conn, br := dial(t, s)

	poll := func(since uint64) []obs.Event {
		t.Helper()
		fmt.Fprintf(conn, "GET /debug/events?since=%d HTTP/1.1\r\nHost: x\r\n\r\n", since)
		code, _, raw := readResponse(t, br)
		if code != 200 {
			t.Fatalf("/debug/events?since=%d: %d", since, code)
		}
		var body struct {
			Events []obs.Event `json:"events"`
		}
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		return body.Events
	}

	seen := make(map[uint64]int)
	var cursor uint64
	for round := 0; round < 5; round++ {
		// New traffic between polls: each request lands at least one
		// event (accept on the first pass, park/wake on later ones).
		fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
		readResponse(t, br)
		for _, ev := range poll(cursor) {
			seen[ev.Seq]++
			if ev.Seq <= cursor {
				t.Errorf("round %d: event seq %d at or before cursor %d", round, ev.Seq, cursor)
			}
			if ev.Seq > cursor {
				cursor = ev.Seq
			}
		}
	}
	for seq, n := range seen {
		if n != 1 {
			t.Errorf("event seq %d delivered %d times, want exactly once", seq, n)
		}
	}
	// Completeness: a cold full drain must see exactly the seqs the
	// cursor polls accumulated (the rings are far from wrapping here),
	// except events recorded after the last poll.
	for _, ev := range poll(0) {
		if ev.Seq <= cursor {
			if seen[ev.Seq] != 1 {
				t.Errorf("event seq %d visible in a full drain but skipped by the cursor polls", ev.Seq)
			}
		}
	}
}

// TestFlowsHandlerJSON mounts /debug/flows and checks the stitched
// journeys it serves: the warm-up request's flow group appears with its
// accept hop, the group= filter narrows to one journey, and since=
// beyond the newest event returns none.
func TestFlowsHandlerJSON(t *testing.T) {
	var s *Server
	r := NewRouter()
	r.Handle("/", echoPath)
	r.Handle("/debug/flows", func(ctx *RequestCtx) { FlowsHandler(s, FlowsConfig{})(ctx) })
	s = start(t, Config{Workers: 1, Handler: r.Serve})
	conn, br := dial(t, s)
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	readResponse(t, br)

	get := func(path string) (int, []byte) {
		t.Helper()
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: x\r\n\r\n", path)
		code, headers, raw := readResponse(t, br)
		if code == 200 && headers["content-type"] != "application/json" {
			t.Fatalf("%s content-type %q", path, headers["content-type"])
		}
		return code, raw
	}

	var body struct {
		Workers   int           `json:"workers"`
		NextSince uint64        `json:"nextSince"`
		Truncated bool          `json:"truncated"`
		Journeys  []obs.Journey `json:"journeys"`
	}
	code, raw := get("/debug/flows")
	if code != 200 {
		t.Fatalf("/debug/flows: %d", code)
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("flows endpoint served invalid JSON: %v\n%s", err, raw)
	}
	if body.Workers != 1 || len(body.Journeys) == 0 || body.NextSince == 0 {
		t.Fatalf("flows body implausible: workers %d, %d journeys, nextSince %d",
			body.Workers, len(body.Journeys), body.NextSince)
	}
	j := body.Journeys[0]
	if j.Group < 0 || len(j.Hops) == 0 {
		t.Fatalf("journey has group %d with %d hops", j.Group, len(j.Hops))
	}
	sawAccept := false
	for i, hop := range j.Hops {
		if hop.Group != j.Group {
			t.Errorf("hop %d tagged group %d inside journey %d", i, hop.Group, j.Group)
		}
		if i > 0 && hop.Hop <= j.Hops[i-1].Hop {
			t.Errorf("hop counters not strictly increasing: %d after %d", hop.Hop, j.Hops[i-1].Hop)
		}
		if hop.Kind == obs.KindAccept {
			sawAccept = true
		}
	}
	if !sawAccept {
		t.Error("journey is missing its accept hop")
	}

	// group= narrows to exactly that journey.
	code, raw = get(fmt.Sprintf("/debug/flows?group=%d", j.Group))
	if code != 200 {
		t.Fatalf("group filter: %d", code)
	}
	var filtered struct {
		Journeys []obs.Journey `json:"journeys"`
	}
	if err := json.Unmarshal(raw, &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Journeys) != 1 || filtered.Journeys[0].Group != j.Group {
		t.Fatalf("group=%d filter returned %v", j.Group, filtered.Journeys)
	}

	// since= beyond the newest event: an empty window.
	code, raw = get(fmt.Sprintf("/debug/flows?group=%d&since=%d", j.Group, body.NextSince+1000000))
	if code != 200 {
		t.Fatalf("since filter: %d", code)
	}
	if err := json.Unmarshal(raw, &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Journeys) != 0 {
		t.Fatalf("future since= cursor still returned %d journeys", len(filtered.Journeys))
	}
}

// TestTraceHandlerChromeFormat mounts /debug/trace and checks the
// export is a loadable Chrome trace: valid JSON, a traceEvents array
// with per-worker thread_name metadata, and at least one residency span
// ("X" event) for the traffic the warm-up generated.
func TestTraceHandlerChromeFormat(t *testing.T) {
	var s *Server
	r := NewRouter()
	r.Handle("/", echoPath)
	r.Handle("/debug/trace", func(ctx *RequestCtx) { TraceHandler(s)(ctx) })
	s = start(t, Config{Workers: 2, Handler: r.Serve})
	conn, br := dial(t, s)
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	readResponse(t, br)

	fmt.Fprintf(conn, "GET /debug/trace HTTP/1.1\r\nHost: x\r\n\r\n")
	code, headers, raw := readResponse(t, br)
	if code != 200 || headers["content-type"] != "application/json" {
		t.Fatalf("/debug/trace: %d %q", code, headers["content-type"])
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace endpoint served invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	threads := map[int]bool{}
	spans := 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			threads[ev.TID] = true
		case ev.Ph == "X":
			spans++
			if ev.Dur <= 0 {
				t.Errorf("residency span with non-positive duration %v", ev.Dur)
			}
		}
	}
	if !threads[0] || !threads[1] {
		t.Errorf("trace missing worker track metadata: %v", threads)
	}
	if spans == 0 {
		t.Error("trace has no residency spans after a served request")
	}
}
