package httpaff

import (
	"bytes"
	"errors"
	"os"
	"time"

	"affinityaccept/internal/http11"
	"affinityaccept/internal/obs"
)

// protoError is a request-level protocol failure the server answers
// with a status code before closing the connection.
type protoError struct {
	code int
	text string
}

func (e *protoError) Error() string { return e.text }

var (
	errBadRequest     = &protoError{400, "httpaff: malformed request"}
	errHeaderTooLarge = &protoError{431, "httpaff: request headers exceed MaxHeaderBytes"}
	errBodyTooLarge   = &protoError{413, "httpaff: request body exceeds MaxBodyBytes"}
	errChunked        = &protoError{501, "httpaff: Transfer-Encoding is not supported"}
	errBadVersion     = &protoError{505, "httpaff: unsupported HTTP version"}

	// errClientGone: clean EOF between requests — not an error worth a
	// response, the client simply finished.
	errClientGone = errors.New("httpaff: client closed the connection between requests")
)

var (
	crlfCRLF    = []byte("\r\n\r\n")
	protoHTTP11 = []byte("HTTP/1.1")
	protoHTTP10 = []byte("HTTP/1.0")
)

// equalFold and trimOWS are the shared byte-level primitives from
// internal/http11, aliased so call sites stay short on the hot path.
func equalFold(b []byte, s string) bool { return http11.EqualFold(b, s) }
func trimOWS(b []byte) []byte           { return http11.TrimOWS(b) }

// parseUint parses a non-negative decimal without allocating; false on
// empty input, non-digits, or overflow past 2^30.
func parseUint(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, false
		}
	}
	return n, true
}

// armReadDeadline bounds the in-request reads; it replaces whatever
// deadline the previous park armed. Without a ReadTimeout the idle
// timeout applies: a connection that never completes its request is
// occupying a worker — the serve model runs handlers inline, one
// connection per worker, so an unbounded read here would let a few
// silent clients wedge the whole server even though the operator asked
// for idle connections to be dropped.
func (ctx *RequestCtx) armReadDeadline() {
	ctx.armDeadline(ctx.srv.cfg.ReadTimeout)
}

// armHeadDeadline bounds the head (request line + headers) reads. The
// separate, typically tighter HeaderTimeout is the slowloris defense:
// the deadline is absolute from the first blocking head read, so a
// client dripping one header byte per second is cut off on schedule no
// matter how many drips land.
func (ctx *RequestCtx) armHeadDeadline() {
	timeout := ctx.srv.cfg.HeaderTimeout
	if timeout == 0 {
		timeout = ctx.srv.cfg.ReadTimeout
	}
	ctx.armDeadline(timeout)
}

func (ctx *RequestCtx) armDeadline(timeout time.Duration) {
	if timeout == 0 {
		timeout = ctx.srv.cfg.IdleTimeout
	}
	var dl time.Time
	if timeout > 0 {
		// The worker's coarse clock (one stamp per event-loop
		// iteration, ≤~50ms stale) replaces a time.Now call per
		// request; deadlines are hundreds of milliseconds and up, so
		// the slack is noise.
		dl = ctx.srv.srv.CoarseNow(ctx.worker).Add(timeout)
	}
	ctx.conn.SetReadDeadline(dl)
}

// readRequest reads and parses the next request into ctx.req, consuming
// its bytes from the read buffer. Requests already fully buffered
// (pipelining) are parsed without touching the connection. Returns a
// *protoError for answerable protocol failures, errClientGone for a
// clean EOF between requests, or the transport error.
func (ctx *RequestCtx) readRequest() error {
	// Compact: slide unconsumed pipelined bytes to the front so every
	// request's slices index one contiguous region.
	if ctx.rpos > 0 {
		ctx.rlen = copy(ctx.rbuf, ctx.rbuf[ctx.rpos:ctx.rlen])
		ctx.rpos = 0
	}
	armed := false  // a read deadline has been armed for this request
	headDL := false // ...and it is the (typically tighter) head deadline
	scan := 0
	headerEnd := -1
	for {
		if ctx.rlen > scan {
			if i := bytes.Index(ctx.rbuf[scan:ctx.rlen], crlfCRLF); i >= 0 {
				headerEnd = scan + i + len(crlfCRLF)
				break
			}
			// The terminator may straddle the next read; back up by
			// its length minus one.
			if scan = ctx.rlen - (len(crlfCRLF) - 1); scan < 0 {
				scan = 0
			}
		}
		if ctx.rlen >= ctx.srv.cfg.MaxHeaderBytes {
			return errHeaderTooLarge
		}
		if ctx.rlen == len(ctx.rbuf) {
			ctx.grow(2 * len(ctx.rbuf))
		}
		if !armed {
			ctx.armHeadDeadline()
			armed, headDL = true, true
		}
		n, err := ctx.conn.Read(ctx.rbuf[ctx.rlen:])
		ctx.rlen += n
		if err != nil && n == 0 {
			if ctx.rlen == 0 {
				return errClientGone
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				// A started-but-never-finished head is the slowloris
				// signature; count it for the worker serving the pass,
				// tagged onto the victim flow group's journey.
				ctx.srv.admitw[ctx.worker].headerTimeouts.Add(1)
				port, group := connGroup(ctx.srv, ctx.conn)
				ctx.srv.srv.RecordGroupEvent(ctx.worker, obs.KindHeaderTimeout,
					group, port, int64(ctx.rlen), 0)
			}
			return err // mid-request EOF or timeout
		}
	}
	if headerEnd > ctx.srv.cfg.MaxHeaderBytes {
		return errHeaderTooLarge
	}
	if err := ctx.parseHead(ctx.rbuf[:headerEnd-2]); err != nil {
		return err
	}
	// Body: Content-Length bytes immediately following the headers.
	if ctx.req.contentLength > 0 {
		if ctx.req.contentLength > ctx.srv.cfg.MaxBodyBytes {
			return errBodyTooLarge
		}
		total := headerEnd + ctx.req.contentLength
		if total > len(ctx.rbuf) {
			ctx.grow(total)
		}
		for ctx.rlen < total {
			// The body gets its own budget under ReadTimeout: when a
			// distinct HeaderTimeout armed the head reads, re-arm here
			// so a tight header deadline doesn't strangle a legitimate
			// large upload.
			if !armed || (headDL && ctx.srv.cfg.HeaderTimeout > 0) {
				ctx.armReadDeadline()
				armed, headDL = true, false
			}
			n, err := ctx.conn.Read(ctx.rbuf[ctx.rlen:total])
			ctx.rlen += n
			if err != nil && n == 0 {
				return err
			}
		}
		ctx.req.body = ctx.rbuf[headerEnd:total]
		ctx.rpos = total
	} else {
		ctx.rpos = headerEnd
	}
	return nil
}

// grow resizes the read buffer to at least n bytes, preserving content.
// Growth allocates — it happens only until the buffer fits the
// workload's largest request, then the arena retains the grown buffer.
func (ctx *RequestCtx) grow(n int) {
	if n < 2*len(ctx.rbuf) {
		n = 2 * len(ctx.rbuf)
	}
	nb := make([]byte, n)
	copy(nb, ctx.rbuf[:ctx.rlen])
	ctx.rbuf = nb
}

// parseHead parses the request line and header fields from head, which
// ends with the CRLF of the last header line (the blank line is already
// stripped). All slices stored into ctx.req alias head.
func (ctx *RequestCtx) parseHead(head []byte) error {
	req := &ctx.req
	req.reset()

	eol := bytes.Index(head, crlf)
	if eol < 0 {
		eol = len(head) // request without headers: "GET / HTTP/1.1"
	}
	line := head[:eol]
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 <= 0 {
		return errBadRequest
	}
	sp2 := bytes.IndexByte(line[sp1+1:], ' ')
	if sp2 <= 0 {
		return errBadRequest
	}
	sp2 += sp1 + 1
	req.method = line[:sp1]
	req.uri = line[sp1+1 : sp2]
	req.proto = line[sp2+1:]
	if len(req.uri) == 0 {
		return errBadRequest
	}
	switch {
	case bytes.Equal(req.proto, protoHTTP11):
		req.keepAlive = true
	case bytes.Equal(req.proto, protoHTTP10):
		req.keepAlive = false
	default:
		return errBadVersion
	}
	if q := bytes.IndexByte(req.uri, '?'); q >= 0 {
		req.path, req.query = req.uri[:q], req.uri[q+1:]
	} else {
		req.path = req.uri
	}

	rest := head
	if eol < len(head) {
		rest = head[eol+2:]
	} else {
		rest = nil
	}
	seenCL := false
	for len(rest) > 0 {
		eol := bytes.Index(rest, crlf)
		if eol < 0 {
			line, rest = rest, nil
		} else {
			line, rest = rest[:eol], rest[eol+2:]
		}
		if len(line) == 0 {
			continue
		}
		col := bytes.IndexByte(line, ':')
		if col <= 0 {
			return errBadRequest
		}
		key := trimOWS(line[:col])
		val := trimOWS(line[col+1:])
		req.headers = append(req.headers, headerField{key: key, val: val})
		switch {
		case equalFold(key, "content-length"):
			// Duplicate Content-Length headers are a request-smuggling
			// vector (RFC 9112 §6.3): two parsers disagreeing on which
			// copy wins disagree on where the next request starts.
			// Reject them outright, matching values included.
			if seenCL {
				return errBadRequest
			}
			seenCL = true
			n, ok := parseUint(val)
			if !ok {
				return errBadRequest
			}
			req.contentLength = n
		case equalFold(key, "connection"):
			if equalFold(val, "close") {
				req.keepAlive = false
			} else if equalFold(val, "keep-alive") {
				req.keepAlive = true
			}
		case equalFold(key, "transfer-encoding"):
			return errChunked
		}
	}
	return nil
}
