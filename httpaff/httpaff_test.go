package httpaff

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"affinityaccept/internal/loadgen"
)

// echoPath writes the request path, or the body for requests that have
// one — enough surface for every lifecycle test to assert on.
func echoPath(ctx *RequestCtx) {
	if len(ctx.Body()) > 0 {
		ctx.Write(ctx.Body())
		return
	}
	ctx.Write(ctx.Path())
}

// start builds and starts a server, registering a cleanup shutdown.
func start(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Handler == nil {
		cfg.Handler = echoPath
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// readResponse parses one response off the wire: status code, headers
// (lowercased keys), body.
func readResponse(t *testing.T, br *bufio.Reader) (int, map[string]string, []byte) {
	t.Helper()
	statusLine, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("read status line: %v", err)
	}
	parts := strings.SplitN(strings.TrimSpace(statusLine), " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		t.Fatalf("bad status line %q", statusLine)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		t.Fatalf("bad status code in %q", statusLine)
	}
	headers := make(map[string]string)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read header: %v", err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			t.Fatalf("bad header line %q", line)
		}
		headers[strings.ToLower(k)] = strings.TrimSpace(v)
	}
	n, err := strconv.Atoi(headers["content-length"])
	if err != nil {
		t.Fatalf("missing Content-Length: %v", headers)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return code, headers, body
}

func dial(t *testing.T, s *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn)
}

// TestKeepAliveSequential is the basic lifecycle: several requests on
// one connection, each round trip parking the connection in between, so
// every request after the first exercises the Requeue path.
func TestKeepAliveSequential(t *testing.T) {
	s := start(t, Config{Workers: 2})
	conn, br := dial(t, s)
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/req%d", i)
		if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path); err != nil {
			t.Fatal(err)
		}
		code, headers, body := readResponse(t, br)
		if code != 200 {
			t.Fatalf("request %d: status %d", i, code)
		}
		if string(body) != path {
			t.Fatalf("request %d: body %q, want %q", i, body, path)
		}
		if headers["connection"] == "close" {
			t.Fatalf("request %d: keep-alive connection advertised close", i)
		}
		if headers["server"] != "httpaff" {
			t.Fatalf("request %d: Server header %q", i, headers["server"])
		}
		if headers["date"] == "" {
			t.Fatalf("request %d: missing Date header", i)
		}
	}
	st := s.Stats()
	if st.Requeued < 4 {
		t.Errorf("requeued = %d, want >= 4 (each inter-request gap parks)", st.Requeued)
	}
	if st.Served < 5 {
		t.Errorf("served = %d, want >= 5 handler passes", st.Served)
	}
}

// TestPipelined sends a burst of requests in one write; the server must
// answer all of them, in order, without waiting for the client between
// them.
func TestPipelined(t *testing.T) {
	s := start(t, Config{Workers: 2})
	conn, br := dial(t, s)
	const n = 8
	var batch bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&batch, "GET /p%d HTTP/1.1\r\nHost: t\r\n\r\n", i)
	}
	if _, err := conn.Write(batch.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		code, _, body := readResponse(t, br)
		if code != 200 || string(body) != fmt.Sprintf("/p%d", i) {
			t.Fatalf("pipelined response %d: code %d body %q", i, code, body)
		}
	}
}

// TestInterop proves the wire format against the standard library's
// client, including transparent connection reuse.
func TestInterop(t *testing.T) {
	s := start(t, Config{Workers: 2})
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()
	url := "http://" + s.Addr().String()
	for i := 0; i < 6; i++ {
		resp, err := client.Get(fmt.Sprintf("%s/std%d", url, i))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || string(body) != fmt.Sprintf("/std%d", i) {
			t.Fatalf("request %d: %d %q", i, resp.StatusCode, body)
		}
	}
}

// TestPostBody round-trips a request body through Content-Length
// framing.
func TestPostBody(t *testing.T) {
	s := start(t, Config{Workers: 2})
	conn, br := dial(t, s)
	payload := strings.Repeat("abc", 100)
	fmt.Fprintf(conn, "POST /upload HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s", len(payload), payload)
	code, _, body := readResponse(t, br)
	if code != 200 || string(body) != payload {
		t.Fatalf("POST echo: code %d, body len %d want %d", code, len(body), len(payload))
	}
}

// TestRouterDispatch covers exact-path routing, query stripping, and
// the 404 fallback.
func TestRouterDispatch(t *testing.T) {
	r := NewRouter()
	r.Handle("/a", func(ctx *RequestCtx) { ctx.WriteString("A") })
	r.Handle("/b", func(ctx *RequestCtx) {
		ctx.SetContentType("application/json")
		fmt.Fprintf(ctx, `{"q":%q}`, ctx.Query())
	})
	s := start(t, Config{Workers: 2, Handler: r.Serve})
	conn, br := dial(t, s)

	fmt.Fprint(conn, "GET /a HTTP/1.1\r\nHost: t\r\n\r\n")
	code, _, body := readResponse(t, br)
	if code != 200 || string(body) != "A" {
		t.Fatalf("/a: %d %q", code, body)
	}

	fmt.Fprint(conn, "GET /b?x=1 HTTP/1.1\r\nHost: t\r\n\r\n")
	code, headers, body := readResponse(t, br)
	if code != 200 || string(body) != `{"q":"x=1"}` || headers["content-type"] != "application/json" {
		t.Fatalf("/b: %d %q %q", code, body, headers["content-type"])
	}

	fmt.Fprint(conn, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
	code, _, _ = readResponse(t, br)
	if code != 404 {
		t.Fatalf("unrouted path: %d, want 404", code)
	}
}

// TestRouterMethods covers method-aware registration: per-method
// dispatch, the Handle fallback for unregistered methods, and the 405 +
// Allow response when a path has only method handlers.
func TestRouterMethods(t *testing.T) {
	r := NewRouter()
	r.HandleMethod("GET", "/item", func(ctx *RequestCtx) { ctx.WriteString("got") })
	r.HandleMethod("POST", "/item", func(ctx *RequestCtx) { ctx.WriteString("posted") })
	r.HandleMethod("DELETE", "/strict", func(ctx *RequestCtx) { ctx.WriteString("gone") })
	r.HandleMethod("GET", "/mixed", func(ctx *RequestCtx) { ctx.WriteString("mixed-get") })
	r.Handle("/mixed", func(ctx *RequestCtx) { ctx.WriteString("mixed-any") })
	s := start(t, Config{Workers: 2, Handler: r.Serve})
	conn, br := dial(t, s)

	cases := []struct {
		method, path string
		wantCode     int
		wantBody     string
		wantAllow    string
	}{
		{"GET", "/item", 200, "got", ""},
		{"POST", "/item", 200, "posted", ""},
		{"PUT", "/item", 405, "", "GET, POST"},
		{"GET", "/strict", 405, "", "DELETE"},
		{"DELETE", "/strict", 200, "gone", ""},
		{"GET", "/mixed", 200, "mixed-get", ""},
		{"PATCH", "/mixed", 200, "mixed-any", ""}, // Handle catches the rest
		{"GET", "/absent", 404, "", ""},
	}
	for _, tc := range cases {
		fmt.Fprintf(conn, "%s %s HTTP/1.1\r\nHost: t\r\n\r\n", tc.method, tc.path)
		code, headers, body := readResponse(t, br)
		if code != tc.wantCode {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, code, tc.wantCode)
		}
		if tc.wantBody != "" && string(body) != tc.wantBody {
			t.Fatalf("%s %s: body %q, want %q", tc.method, tc.path, body, tc.wantBody)
		}
		if headers["allow"] != tc.wantAllow {
			t.Fatalf("%s %s: Allow %q, want %q", tc.method, tc.path, headers["allow"], tc.wantAllow)
		}
	}
}

// TestRouterMethodHeadFallback: a GET registration serves HEAD with the
// body suppressed; an explicit HEAD handler still wins.
func TestRouterMethodHeadFallback(t *testing.T) {
	r := NewRouter()
	r.HandleMethod("GET", "/item", func(ctx *RequestCtx) { ctx.WriteString("got") })
	r.HandleMethod("GET", "/own", func(ctx *RequestCtx) { ctx.WriteString("get-handler") })
	r.HandleMethod("HEAD", "/own", func(ctx *RequestCtx) { ctx.SetHeader("X-Head", "1") })
	s := start(t, Config{Workers: 2, Handler: r.Serve})
	conn, br := dial(t, s)

	// HEAD falls back to GET: 200, Content-Length of the suppressed
	// body, no body bytes (the pipelined GET behind it proves that).
	fmt.Fprint(conn, "HEAD /item HTTP/1.1\r\nHost: t\r\n\r\nGET /item HTTP/1.1\r\nHost: t\r\n\r\n")
	statusLine, err := br.ReadString('\n')
	if err != nil || !strings.Contains(statusLine, "200") {
		t.Fatalf("HEAD via GET handler: %q %v", statusLine, err)
	}
	var clen string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(line) == "" {
			break
		}
		if v, ok := strings.CutPrefix(strings.ToLower(line), "content-length:"); ok {
			clen = strings.TrimSpace(v)
		}
	}
	if clen != "3" {
		t.Fatalf("HEAD Content-Length = %q, want 3 (len of \"got\")", clen)
	}
	code, _, body := readResponse(t, br)
	if code != 200 || string(body) != "got" {
		t.Fatalf("GET after HEAD: %d %q — HEAD leaked body bytes", code, body)
	}

	// Explicit HEAD registration wins over the GET fallback.
	fmt.Fprint(conn, "HEAD /own HTTP/1.1\r\nHost: t\r\n\r\n")
	code, headers, _ := readResponse(t, br)
	if code != 200 || headers["x-head"] != "1" {
		t.Fatalf("explicit HEAD handler: %d, X-Head %q", code, headers["x-head"])
	}
}

// TestRouterMethodZeroAlloc: method dispatch must not push routing off
// the zero-allocation path.
func TestRouterMethodZeroAlloc(t *testing.T) {
	r := NewRouter()
	r.HandleMethod("GET", "/z", func(ctx *RequestCtx) {})
	ctx := newTestCtx()
	if err := parseRaw(ctx, "GET /z HTTP/1.1\r\nHost: t\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	r.Serve(ctx) // warm
	if allocs := testing.AllocsPerRun(200, func() { r.Serve(ctx) }); allocs != 0 {
		t.Fatalf("method routing allocates %.1f objects per request, want 0", allocs)
	}
}

// TestStatsHandler scrapes the debug endpoint over the wire and checks
// the JSON carries the locality and pool counters a dashboard needs.
func TestStatsHandler(t *testing.T) {
	r := NewRouter()
	r.Handle("/", echoPath)
	s := start(t, Config{Workers: 2, Handler: r.Serve})
	// Setup-time registration: the server is live but nothing has
	// connected yet, so this cannot race a Serve call.
	r.Handle("/_stats", StatsHandler(s.Transport()))
	conn, br := dial(t, s)

	for i := 0; i < 3; i++ {
		fmt.Fprint(conn, "GET / HTTP/1.1\r\nHost: t\r\n\r\n")
		if code, _, _ := readResponse(t, br); code != 200 {
			t.Fatalf("warm-up request %d failed", i)
		}
	}
	fmt.Fprint(conn, "GET /_stats HTTP/1.1\r\nHost: t\r\n\r\n")
	code, headers, body := readResponse(t, br)
	if code != 200 || headers["content-type"] != "application/json" {
		t.Fatalf("stats endpoint: %d %q", code, headers["content-type"])
	}
	var payload struct {
		Served       uint64
		LocalityPct  float64 `json:"localityPct"`
		PoolReusePct float64 `json:"poolReusePct"`
		Workers      []struct{ Worker int }
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, body)
	}
	if payload.Served < 3 {
		t.Errorf("stats served = %d, want >= 3", payload.Served)
	}
	if len(payload.Workers) != 2 {
		t.Errorf("stats workers = %d, want 2", len(payload.Workers))
	}
	if payload.PoolReusePct == 0 {
		t.Error("stats poolReusePct missing")
	}
}

// TestHeadSuppressesBody: HEAD answers with the body's Content-Length
// but no body bytes.
func TestHeadSuppressesBody(t *testing.T) {
	s := start(t, Config{Workers: 2})
	conn, br := dial(t, s)
	fmt.Fprint(conn, "HEAD /h HTTP/1.1\r\nHost: t\r\n\r\nGET /h HTTP/1.1\r\nHost: t\r\n\r\n")
	// First response: headers only. The immediately pipelined GET lets
	// us verify no body bytes were interleaved.
	statusLine, err := br.ReadString('\n')
	if err != nil || !strings.Contains(statusLine, "200") {
		t.Fatalf("HEAD status: %q %v", statusLine, err)
	}
	var clen string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(line) == "" {
			break
		}
		if v, ok := strings.CutPrefix(strings.ToLower(line), "content-length:"); ok {
			clen = strings.TrimSpace(v)
		}
	}
	if clen != "2" {
		t.Fatalf("HEAD Content-Length = %q, want 2 (len of /h)", clen)
	}
	code, _, body := readResponse(t, br)
	if code != 200 || string(body) != "/h" {
		t.Fatalf("GET after HEAD: %d %q — HEAD leaked body bytes", code, body)
	}
}

// TestMaxRequestsPerConn: the limit's final response advertises close
// and the server hangs up.
func TestMaxRequestsPerConn(t *testing.T) {
	s := start(t, Config{Workers: 2, MaxRequestsPerConn: 3})
	conn, br := dial(t, s)
	for i := 0; i < 3; i++ {
		fmt.Fprint(conn, "GET /n HTTP/1.1\r\nHost: t\r\n\r\n")
		code, headers, _ := readResponse(t, br)
		if code != 200 {
			t.Fatalf("request %d: %d", i, code)
		}
		wantClose := i == 2
		if (headers["connection"] == "close") != wantClose {
			t.Fatalf("request %d: Connection close = %v, want %v", i, !wantClose, wantClose)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open after max requests: %v", err)
	}
}

// TestConnectionCloseRequest: a client's Connection: close is honored.
func TestConnectionCloseRequest(t *testing.T) {
	s := start(t, Config{Workers: 2})
	conn, br := dial(t, s)
	fmt.Fprint(conn, "GET /c HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
	code, headers, _ := readResponse(t, br)
	if code != 200 || headers["connection"] != "close" {
		t.Fatalf("%d, connection %q", code, headers["connection"])
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open: %v", err)
	}
}

// TestHTTP10ClosesByDefault: an HTTP/1.0 request without keep-alive is
// answered and closed.
func TestHTTP10ClosesByDefault(t *testing.T) {
	s := start(t, Config{Workers: 2})
	conn, br := dial(t, s)
	fmt.Fprint(conn, "GET /old HTTP/1.0\r\n\r\n")
	code, headers, body := readResponse(t, br)
	if code != 200 || string(body) != "/old" || headers["connection"] != "close" {
		t.Fatalf("%d %q %q", code, body, headers["connection"])
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("HTTP/1.0 connection still open: %v", err)
	}
}

// TestIdleTimeout: a parked keep-alive connection is closed once idle
// past the limit.
func TestIdleTimeout(t *testing.T) {
	s := start(t, Config{Workers: 2, IdleTimeout: 100 * time.Millisecond})
	conn, br := dial(t, s)
	fmt.Fprint(conn, "GET /i HTTP/1.1\r\nHost: t\r\n\r\n")
	if code, _, _ := readResponse(t, br); code != 200 {
		t.Fatal("first request failed")
	}
	start := time.Now()
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("idle connection: read = %v, want EOF", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("idle close took %v", waited)
	}
}

// TestIdleTimeoutBoundsStalledRequest: with only IdleTimeout set, a
// client that sends a partial request and goes silent is disconnected
// rather than pinning its worker forever — the inline worker model
// makes an unbounded mid-request read a denial of service.
func TestIdleTimeoutBoundsStalledRequest(t *testing.T) {
	s := start(t, Config{Workers: 2, IdleTimeout: 100 * time.Millisecond})
	conn, br := dial(t, s)
	if _, err := fmt.Fprint(conn, "GET /stalled HTTP"); err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("stalled request: read = %v, want EOF", err)
	}
	if waited := time.Since(begin); waited > 5*time.Second {
		t.Fatalf("stalled-request close took %v", waited)
	}
	// The worker is free again: a well-behaved request still serves.
	conn2, br2 := dial(t, s)
	fmt.Fprint(conn2, "GET /ok HTTP/1.1\r\nHost: t\r\n\r\n")
	if code, _, _ := readResponse(t, br2); code != 200 {
		t.Fatal("server wedged after a stalled client")
	}
}

// TestProtocolErrors maps malformed input to the right status, each on
// a fresh connection since all of them are close-delimited.
func TestProtocolErrors(t *testing.T) {
	s := start(t, Config{Workers: 2, MaxHeaderBytes: 256})
	cases := []struct {
		name string
		raw  string
		want int
	}{
		{"malformed request line", "GARBAGE\r\n\r\n", 400},
		{"bad version", "GET / HTTP/2.0\r\n\r\n", 505},
		{"chunked not implemented", "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
		{"bad content length", "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400},
		{"negative content length", "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
		{"overflowing content length", "POST / HTTP/1.1\r\nContent-Length: 18446744073709551617\r\n\r\n", 400},
		{"duplicate content length",
			"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 40\r\n\r\nabcd", 400},
		{"headers too large", "GET / HTTP/1.1\r\nX-Big: " + strings.Repeat("x", 512) + "\r\n\r\n", 431},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, br := dial(t, s)
			if _, err := conn.Write([]byte(tc.raw)); err != nil {
				t.Fatal(err)
			}
			code, headers, _ := readResponse(t, br)
			if code != tc.want {
				t.Fatalf("status %d, want %d", code, tc.want)
			}
			if headers["connection"] != "close" {
				t.Fatalf("error response must close, got %q", headers["connection"])
			}
			if _, err := br.ReadByte(); err != io.EOF {
				t.Fatalf("connection open after protocol error: %v", err)
			}
		})
	}
}

// TestGracefulDrain: Shutdown closes parked keep-alive connections (the
// client sees EOF, not a hang) and completes in bounded time.
func TestGracefulDrain(t *testing.T) {
	s := start(t, Config{Workers: 2})
	conn, br := dial(t, s)
	fmt.Fprint(conn, "GET /d HTTP/1.1\r\nHost: t\r\n\r\n")
	if code, _, _ := readResponse(t, br); code != 200 {
		t.Fatal("request failed")
	}
	// Wait for the park.
	for deadline := time.Now().Add(5 * time.Second); s.Stats().Requeued == 0; {
		if time.Now().After(deadline) {
			t.Fatal("connection never parked")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("parked connection after shutdown: %v", err)
	}
}

// TestWorkerLocalPoolReuse is the tentpole's proof obligation in unit
// form: after warmup, virtually every handler pass acquires its context
// from the serving worker's own free list.
func TestWorkerLocalPoolReuse(t *testing.T) {
	s := start(t, Config{Workers: 2})
	const conns, reqs = 4, 25
	for c := 0; c < conns; c++ {
		conn, br := dial(t, s)
		for i := 0; i < reqs; i++ {
			fmt.Fprint(conn, "GET /w HTTP/1.1\r\nHost: t\r\n\r\n")
			if code, _, _ := readResponse(t, br); code != 200 {
				t.Fatalf("conn %d req %d failed", c, i)
			}
		}
		conn.Close()
	}
	st := s.Stats()
	if st.Pool.Gets() < conns*reqs {
		t.Fatalf("pool gets = %d, want >= %d (one per handler pass)", st.Pool.Gets(), conns*reqs)
	}
	if pct := st.Pool.ReusePct(); pct < 90 {
		t.Fatalf("pool reuse = %.1f%%, want >= 90%% (misses: %d)", pct, st.Pool.Misses)
	}
	// The per-worker split must add up to the aggregate.
	var sum uint64
	for _, w := range st.Workers {
		sum += w.Pool.Gets()
	}
	if sum != st.Pool.Gets() {
		t.Fatalf("per-worker pool gets sum %d != aggregate %d", sum, st.Pool.Gets())
	}
}

// TestMigrationComposesWithKeepAlive runs the paper's §3.3.2 skewed
// workload through the HTTP layer: long-lived keep-alive connections
// all hashing into worker 0's flow groups, with per-request service
// time so one worker cannot keep up. Migration must engage (nonzero
// migrations), and — the httpaff-specific claim — pool reuse stays warm
// even though connections are switching workers, because each pass uses
// the serving worker's own arena.
func TestMigrationComposesWithKeepAlive(t *testing.T) {
	const (
		workers = 4
		groups  = 16
		conns   = 24
		window  = 400 * time.Millisecond
	)
	s := start(t, Config{
		Workers:         workers,
		FlowGroups:      groups,
		MigrateInterval: 2 * time.Millisecond,
		Backlog:         workers * 64,
		HighPct:         20,
		LowPct:          5,
		Handler: func(ctx *RequestCtx) {
			time.Sleep(200 * time.Microsecond)
			ctx.Write(ctx.Path())
		},
	})

	base := loadgen.PortBase(groups)
	var hot []int
	for g := 0; g < s.FlowGroups(); g++ {
		if s.OwnerOf(uint16(base+g)) == 0 {
			hot = append(hot, g)
		}
	}
	if len(hot) == 0 {
		t.Fatal("worker 0 owns no groups")
	}

	stop := time.Now().Add(window)
	done := make(chan error, conns)
	for i := 0; i < conns; i++ {
		conn, err := loadgen.DialGroup(s.Addr().String(), hot[i%len(hot)], groups)
		if err != nil {
			t.Fatal(err)
		}
		go func(conn net.Conn) {
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			br := bufio.NewReader(conn)
			for time.Now().Before(stop) {
				if _, err := fmt.Fprint(conn, "GET /m HTTP/1.1\r\nHost: t\r\n\r\n"); err != nil {
					done <- err
					return
				}
				if _, err := br.ReadString('\n'); err != nil {
					done <- err
					return
				}
				// Drain the rest of the response.
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						done <- err
						return
					}
					if strings.TrimSpace(line) == "" {
						break
					}
				}
				if _, err := io.ReadFull(br, make([]byte, 2)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(conn)
	}
	for i := 0; i < conns; i++ {
		if err := <-done; err != nil {
			t.Fatalf("client: %v", err)
		}
	}

	st := s.Stats()
	if st.Migrations == 0 {
		t.Error("no flow-group migrations under the skewed keep-alive HTTP workload")
	}
	if st.Requeued == 0 {
		t.Error("no requeues — the keep-alive path never parked")
	}
	if pct := st.Pool.ReusePct(); pct < 90 {
		t.Errorf("pool reuse %.1f%% with migration on, want >= 90%%", pct)
	}
}
