package httpaff

import (
	"fmt"
	"io"
	"strings"
)

// AdmissionStats snapshots the HTTP layer's admission-policy counters;
// the transport-level half (per-IP rate limiting, the connection
// budget) lives in serve.Stats.
type AdmissionStats struct {
	// InflightHeaders is the instantaneous number of workers blocked
	// reading a fresh connection's first request head.
	InflightHeaders int64
	// HeaderTimeouts counts request heads cut off at their read
	// deadline (the slowloris defense firing); HeaderSheds counts
	// fresh connections 503'd over MaxInflightHeaders; OverloadSheds
	// counts fresh connections 503'd while every worker was busy.
	HeaderTimeouts uint64
	HeaderSheds    uint64
	OverloadSheds  uint64
	// Workers is the per-worker breakdown of the three counters above.
	Workers []WorkerAdmission
}

// WorkerAdmission is one worker's admission counters.
type WorkerAdmission struct {
	HeaderTimeouts uint64
	HeaderSheds    uint64
	OverloadSheds  uint64
}

// Admission snapshots the per-worker admission counters.
func (s *Server) Admission() AdmissionStats {
	st := AdmissionStats{
		InflightHeaders: s.inflightHeaders.Load(),
		Workers:         make([]WorkerAdmission, len(s.admitw)),
	}
	for i := range s.admitw {
		w := &s.admitw[i]
		st.Workers[i] = WorkerAdmission{
			HeaderTimeouts: w.headerTimeouts.Load(),
			HeaderSheds:    w.headerSheds.Load(),
			OverloadSheds:  w.overloadSheds.Load(),
		}
		st.HeaderTimeouts += st.Workers[i].HeaderTimeouts
		st.HeaderSheds += st.Workers[i].HeaderSheds
		st.OverloadSheds += st.Workers[i].OverloadSheds
	}
	return st
}

// MetricsHandler returns a handler serving the server's counters in
// Prometheus text exposition format — the machine-scrapeable sibling of
// StatsHandler's JSON. It takes the httpaff Server (not just the
// transport) because the shed/ratelimit/deadline story spans both
// layers: the transport contributes accept-time admission (per-IP rate
// limiting, the connection budget, fd-pressure shedding), event-plane
// counters, evloop and clock-lag gauges, and the park/steal/migrate
// histograms; the HTTP layer contributes header-deadline and
// 503-backpressure counters plus the request latency/size histograms.
// Layers stacked above (proxyaff's upstream exchange histograms, wsaff's
// frame counters) compose in through extras — each is invoked in order
// and appends its own series, so one scrape endpoint covers the whole
// stack without a registry. Mount it on a Router path (conventionally
// "/metrics"); like StatsHandler it is diagnostic, not hot-path, and
// allocates.
func MetricsHandler(srv *Server, extras ...func(io.Writer)) HandlerFunc {
	return func(ctx *RequestCtx) {
		var b strings.Builder
		st := srv.Stats()
		ad := srv.Admission()

		fmt.Fprintf(&b, "# HELP affinity_workers Configured worker (and on Linux, listener) count.\n# TYPE affinity_workers gauge\naffinity_workers %d\n", len(st.Workers))
		fmt.Fprintf(&b, "# HELP affinity_served_total Handler passes served, by worker and queue the pass was popped from.\n# TYPE affinity_served_total counter\n")
		for _, w := range st.Workers {
			fmt.Fprintf(&b, "affinity_served_total{worker=\"%d\",queue=\"local\"} %d\n", w.Worker, w.ServedLocal)
			fmt.Fprintf(&b, "affinity_served_total{worker=\"%d\",queue=\"stolen\"} %d\n", w.Worker, w.ServedStolen)
		}
		fmt.Fprintf(&b, "# HELP affinity_accepted_total Connections routed at accept time, by accepting worker.\n# TYPE affinity_accepted_total counter\n")
		for _, w := range st.Workers {
			fmt.Fprintf(&b, "affinity_accepted_total{worker=\"%d\"} %d\n", w.Worker, w.Accepted)
		}
		fmt.Fprintf(&b, "# HELP affinity_queue_depth Instantaneous per-worker queue depth.\n# TYPE affinity_queue_depth gauge\n")
		for _, w := range st.Workers {
			busy := 0
			if w.Busy {
				busy = 1
			}
			fmt.Fprintf(&b, "affinity_queue_depth{worker=\"%d\"} %d\n", w.Worker, w.QueueDepth)
			fmt.Fprintf(&b, "affinity_worker_busy{worker=\"%d\"} %d\n", w.Worker, busy)
		}
		fmt.Fprintf(&b, "# HELP affinity_dropped_total Connections shed on queue overflow.\n# TYPE affinity_dropped_total counter\naffinity_dropped_total %d\n", st.Dropped)
		fmt.Fprintf(&b, "# HELP affinity_parked Keep-alive connections parked between requests.\n# TYPE affinity_parked gauge\naffinity_parked %d\n", st.Parked)
		fmt.Fprintf(&b, "# HELP affinity_requeued_total Successful keep-alive requeues.\n# TYPE affinity_requeued_total counter\naffinity_requeued_total %d\n", st.Requeued)
		fmt.Fprintf(&b, "# HELP affinity_migrations_total Applied flow-group migrations.\n# TYPE affinity_migrations_total counter\naffinity_migrations_total %d\n", st.Migrations)

		// Admission control: the transport half...
		fmt.Fprintf(&b, "# HELP affinity_ratelimited_total Connections closed at accept by the per-IP token buckets.\n# TYPE affinity_ratelimited_total counter\naffinity_ratelimited_total %d\n", st.Ratelimited)
		fmt.Fprintf(&b, "# HELP affinity_shed_parked_total Parked connections closed LIFO to reclaim descriptors or budget.\n# TYPE affinity_shed_parked_total counter\naffinity_shed_parked_total %d\n", st.ShedParked)
		fmt.Fprintf(&b, "# HELP affinity_budget_rejected_total Connections rejected with the budget exhausted and nothing parked.\n# TYPE affinity_budget_rejected_total counter\naffinity_budget_rejected_total %d\n", st.BudgetRejected)
		fmt.Fprintf(&b, "# HELP affinity_accept_retries_total Transient accept errors survived (EMFILE/ENFILE/ECONNABORTED).\n# TYPE affinity_accept_retries_total counter\naffinity_accept_retries_total %d\n", st.AcceptRetries)
		fmt.Fprintf(&b, "# HELP affinity_live_conns Connections charged against the budget right now (0 when MaxConns unset).\n# TYPE affinity_live_conns gauge\naffinity_live_conns %d\n", st.Live)
		fmt.Fprintf(&b, "# HELP affinity_live_conns_peak High-water mark of affinity_live_conns; never exceeds the budget.\n# TYPE affinity_live_conns_peak gauge\naffinity_live_conns_peak %d\n", st.LivePeak)
		fmt.Fprintf(&b, "# HELP affinity_conn_budget Configured connection budget (0 = unlimited).\n# TYPE affinity_conn_budget gauge\naffinity_conn_budget %d\n", st.MaxConns)

		// ...and the HTTP half, per worker.
		fmt.Fprintf(&b, "# HELP affinity_inflight_headers Workers blocked reading a fresh connection's first request head.\n# TYPE affinity_inflight_headers gauge\naffinity_inflight_headers %d\n", ad.InflightHeaders)
		fmt.Fprintf(&b, "# HELP affinity_header_timeouts_total Request heads cut off at the header read deadline (slowloris defense).\n# TYPE affinity_header_timeouts_total counter\n")
		for i, w := range ad.Workers {
			fmt.Fprintf(&b, "affinity_header_timeouts_total{worker=\"%d\"} %d\n", i, w.HeaderTimeouts)
		}
		fmt.Fprintf(&b, "# HELP affinity_header_sheds_total Fresh connections 503'd over MaxInflightHeaders.\n# TYPE affinity_header_sheds_total counter\n")
		for i, w := range ad.Workers {
			fmt.Fprintf(&b, "affinity_header_sheds_total{worker=\"%d\"} %d\n", i, w.HeaderSheds)
		}
		fmt.Fprintf(&b, "# HELP affinity_overload_sheds_total Fresh connections 503'd while every worker was over its busy watermark.\n# TYPE affinity_overload_sheds_total counter\n")
		for i, w := range ad.Workers {
			fmt.Fprintf(&b, "affinity_overload_sheds_total{worker=\"%d\"} %d\n", i, w.OverloadSheds)
		}
		fmt.Fprintf(&b, "# HELP affinity_pool_reuses_total Worker-arena request contexts served from the local free list.\n# TYPE affinity_pool_reuses_total counter\n")
		for _, w := range st.Workers {
			fmt.Fprintf(&b, "affinity_pool_reuses_total{worker=\"%d\"} %d\n", w.Worker, w.Pool.Reuses)
		}

		// Observability plane: request histograms (this layer), then the
		// transport's event/evloop/latency series, then stacked layers.
		srv.WriteObsMetrics(&b)
		srv.srv.WriteObsMetrics(&b)
		for _, extra := range extras {
			extra(&b)
		}

		ctx.SetContentType("text/plain; version=0.0.4; charset=utf-8")
		ctx.WriteString(b.String())
	}
}
