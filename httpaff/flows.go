package httpaff

import (
	"bytes"
	"encoding/json"
	"strconv"

	"affinityaccept/internal/obs"
)

// FlowsConfig bounds the /debug/flows endpoint's response. The journey
// layer can hold thousands of groups with hundreds of hops each; an
// unbounded dump would make the diagnostic endpoint a DoS lever on the
// server it is diagnosing, so the handler ranks journeys by activity
// and truncates — and says so in the response.
type FlowsConfig struct {
	// MaxJourneys caps how many journeys one response carries. When more
	// groups are active the hottest ones (most hops in the window) win
	// and the response's "truncated" field is set. 0 = 64.
	MaxJourneys int
	// MaxHops is the journey depth: each journey's hop list is cut to
	// its newest MaxHops entries (the journey tail; summary counters
	// still cover the whole window). 0 = 64.
	MaxHops int
}

func (c *FlowsConfig) fill() {
	if c.MaxJourneys <= 0 {
		c.MaxJourneys = 64
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 64
	}
}

// flowsBody is the JSON shape FlowsHandler serves.
type flowsBody struct {
	Workers int `json:"workers"`
	// Since echoes the request cursor; NextSince is the largest event
	// Seq covered by this response — pass it as the next poll's since=
	// to receive only newer hops.
	Since     uint64        `json:"since"`
	NextSince uint64        `json:"nextSince"`
	Truncated bool          `json:"truncated"`
	Journeys  []obs.Journey `json:"journeys"`
}

// FlowsHandler returns a handler serving the stitched per-flow-group
// journeys as JSON. Query parameters: group=N restricts to one flow
// group; since=SEQ stitches only events newer than that sequence
// number (the same cursor /debug/events uses). Journeys are ranked by
// hop count — the hottest groups first — and bounded by cfg. Mount it
// on a Router path (conventionally "/debug/flows"). Diagnostic, not
// hot-path: it allocates.
func FlowsHandler(srv *Server, cfg FlowsConfig) HandlerFunc {
	cfg.fill()
	return func(ctx *RequestCtx) {
		q := ctx.Query()
		since := uint64(queryInt(q, "since", 0))
		group := queryInt(q, "group", -1)

		journeys := srv.srv.Journeys(since)
		var next uint64
		for _, j := range journeys {
			for _, ev := range j.Hops {
				if ev.Seq > next {
					next = ev.Seq
				}
			}
		}
		if group >= 0 {
			kept := journeys[:0]
			for _, j := range journeys {
				if int64(j.Group) == group {
					kept = append(kept, j)
				}
			}
			journeys = kept
		}
		body := flowsBody{
			Workers:   srv.srv.Workers(),
			Since:     since,
			NextSince: next,
			Journeys:  journeys,
		}
		if len(journeys) > cfg.MaxJourneys {
			// Hottest groups win: most hops in the window. Stable on the
			// group-ID order Stitch returns, so equal-activity groups
			// don't flap between polls.
			sortJourneysByHops(journeys)
			body.Journeys = journeys[:cfg.MaxJourneys]
			body.Truncated = true
		}
		for i := range body.Journeys {
			if len(body.Journeys[i].Hops) > cfg.MaxHops {
				body.Journeys[i].Hops = body.Journeys[i].Tail(cfg.MaxHops)
				body.Truncated = true
			}
		}
		out, err := json.Marshal(body)
		if err != nil {
			ctx.SetStatus(500)
			return
		}
		ctx.SetContentType("application/json")
		ctx.Write(out)
	}
}

// sortJourneysByHops orders journeys by descending hop count (insertion
// sort keeps the by-group order among equals without a sort.SliceStable
// comparator allocation — journey counts here are already bounded).
func sortJourneysByHops(js []obs.Journey) {
	for i := 1; i < len(js); i++ {
		for k := i; k > 0 && len(js[k].Hops) > len(js[k-1].Hops); k-- {
			js[k], js[k-1] = js[k-1], js[k]
		}
	}
}

// TraceHandler returns a handler exporting the event timeline in Chrome
// trace-event format — load the response in chrome://tracing or
// Perfetto: one track per worker, one span per flow-group residency,
// instant markers for steals, migrations, reroutes and sheds. Mount it
// on a Router path (conventionally "/debug/trace"). Diagnostic, not
// hot-path: it allocates.
func TraceHandler(srv *Server) HandlerFunc {
	return func(ctx *RequestCtx) {
		var buf bytes.Buffer
		if _, err := obs.WriteTrace(&buf, srv.srv.Workers(), srv.srv.Events()); err != nil {
			ctx.SetStatus(500)
			return
		}
		ctx.SetContentType("application/json")
		ctx.Write(buf.Bytes())
	}
}

// queryValue scans a raw query string for key and returns its value
// (nil when absent). No unescaping: the debug endpoints' parameters are
// all numeric.
func queryValue(q []byte, key string) []byte {
	for len(q) > 0 {
		var pair []byte
		if i := bytes.IndexByte(q, '&'); i >= 0 {
			pair, q = q[:i], q[i+1:]
		} else {
			pair, q = q, nil
		}
		if i := bytes.IndexByte(pair, '='); i >= 0 && string(pair[:i]) == key {
			return pair[i+1:]
		}
	}
	return nil
}

// queryInt parses an integer query parameter, returning def when the
// parameter is absent or malformed.
func queryInt(q []byte, key string, def int64) int64 {
	v := queryValue(q, key)
	if v == nil {
		return def
	}
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return def
	}
	return n
}
