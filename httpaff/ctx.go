package httpaff

import (
	"net"
	"net/http"
	"strconv"
	"time"
)

// headerField is one parsed request header; key and value alias the
// context's read buffer (zero-copy) and are valid only for the handler
// call.
type headerField struct {
	key, val []byte
}

// request is the parsed view of one HTTP/1.1 request. Every byte slice
// aliases the context's read buffer.
type request struct {
	method, uri, proto []byte
	path, query        []byte
	headers            []headerField
	body               []byte
	contentLength      int
	keepAlive          bool
}

func (r *request) reset() {
	r.method, r.uri, r.proto = nil, nil, nil
	r.path, r.query, r.body = nil, nil, nil
	r.headers = r.headers[:0]
	r.contentLength = 0
	r.keepAlive = false
}

// response accumulates what the handler sets; serialization happens
// once, after the handler returns — unless the handler switched to raw
// mode (BeginRawResponse), in which case it has already appended a
// complete serialized response and the server adds nothing.
type response struct {
	status      int
	contentType string
	extra       []byte // raw "Key: Value\r\n" lines from SetHeader
	body        []byte
	connClose   bool
	raw         bool // handler wrote pre-serialized bytes via RawWrite
}

func (r *response) reset() {
	r.status = http.StatusOK
	r.contentType = "text/plain; charset=utf-8"
	r.extra = r.extra[:0]
	r.body = r.body[:0]
	r.connClose = false
	r.raw = false
}

// RequestCtx carries one request/response exchange. Contexts are pooled
// in per-worker arenas: a handler must not retain the ctx or any byte
// slice obtained from it past its return — copy what must outlive the
// request.
type RequestCtx struct {
	srv    *Server
	conn   net.Conn // the pass's connection (park wrapper after pass 1)
	state  *conn    // per-connection HTTP state
	worker int

	rbuf []byte // request bytes; req slices alias this
	rlen int    // valid bytes in rbuf
	rpos int    // consumed bytes (start of the next pipelined request)

	wbuf    []byte // serialized responses awaiting one flush
	flushed int    // response bytes already written this pass

	req  request
	resp response

	// hijack, set by Hijack, is the takeover that replaces HTTP serving
	// on this connection once the current response has flushed.
	hijack TakeoverFunc

	// headerSlot is true while this pass holds one of the server's
	// MaxInflightHeaders slots (a fresh connection's first head read);
	// servePass releases it as soon as that read returns.
	headerSlot bool
}

func (ctx *RequestCtx) begin(nc net.Conn, c *conn, worker int) {
	ctx.conn, ctx.state, ctx.worker = nc, c, worker
}

func (ctx *RequestCtx) end() {
	ctx.conn, ctx.state = nil, nil
	ctx.rlen, ctx.rpos = 0, 0
	ctx.wbuf = ctx.wbuf[:0]
	ctx.flushed = 0
	ctx.req.reset()
	ctx.resp.reset()
	ctx.hijack = nil
	ctx.headerSlot = false
}

// buffered reports how many unconsumed request bytes are sitting in the
// read buffer — nonzero means the client pipelined further requests.
func (ctx *RequestCtx) buffered() int { return ctx.rlen - ctx.rpos }

// flush writes the accumulated responses in one syscall.
func (ctx *RequestCtx) flush() error {
	if len(ctx.wbuf) == 0 {
		return nil
	}
	ctx.flushed += len(ctx.wbuf)
	_, err := ctx.conn.Write(ctx.wbuf)
	ctx.wbuf = ctx.wbuf[:0]
	return err
}

// written reports the response bytes produced so far this pass — flushed
// plus still-buffered — so a delta across one request isolates that
// request's response size even under pipelining.
func (ctx *RequestCtx) written() int { return ctx.flushed + len(ctx.wbuf) }

// ---- request accessors (zero-copy; valid during the handler call) ----

// Method returns the request method verbatim (e.g. "GET").
func (ctx *RequestCtx) Method() []byte { return ctx.req.method }

// Path returns the request target up to any '?'.
func (ctx *RequestCtx) Path() []byte { return ctx.req.path }

// Query returns the raw query string after '?', or nil.
func (ctx *RequestCtx) Query() []byte { return ctx.req.query }

// URI returns the full request target.
func (ctx *RequestCtx) URI() []byte { return ctx.req.uri }

// Protocol returns the request's HTTP version token.
func (ctx *RequestCtx) Protocol() []byte { return ctx.req.proto }

// Body returns the request body, or nil.
func (ctx *RequestCtx) Body() []byte { return ctx.req.body }

// Header returns the value of the named request header (ASCII
// case-insensitive; name must be lowercase), or nil.
func (ctx *RequestCtx) Header(name string) []byte {
	for i := range ctx.req.headers {
		if equalFold(ctx.req.headers[i].key, name) {
			return ctx.req.headers[i].val
		}
	}
	return nil
}

// Worker reports which worker is serving this pass — with migration
// enabled, successive requests on one connection may report different
// workers exactly once per flow-group migration. Layers that keep
// per-worker state of their own (the proxyaff upstream pools) index it
// by this value, which is what makes their lock-free single-owner
// structures sound: the handler runs inline on the worker goroutine.
func (ctx *RequestCtx) Worker() int { return ctx.worker }

// HeaderCount reports how many request headers were parsed; with
// HeaderAt it lets a handler walk every header without allocating a
// visitor closure.
func (ctx *RequestCtx) HeaderCount() int { return len(ctx.req.headers) }

// HeaderAt returns the i'th request header's key and value in arrival
// order. Both slices alias the read buffer: valid only during the
// handler call. i must be in [0, HeaderCount()).
func (ctx *RequestCtx) HeaderAt(i int) (key, value []byte) {
	h := &ctx.req.headers[i]
	return h.key, h.val
}

// RequestNum reports how many requests this connection has served,
// including the current one.
func (ctx *RequestCtx) RequestNum() int { return ctx.state.reqs }

// RemoteAddr reports the client address.
func (ctx *RequestCtx) RemoteAddr() net.Addr { return ctx.conn.RemoteAddr() }

// ---- response construction ----

// SetStatus sets the response status code (default 200).
func (ctx *RequestCtx) SetStatus(code int) { ctx.resp.status = code }

// SetContentType sets the Content-Type header (default "text/plain;
// charset=utf-8").
func (ctx *RequestCtx) SetContentType(ct string) { ctx.resp.contentType = ct }

// SetHeader adds a response header. Content-Type, Content-Length,
// Server, Date and Connection are managed by the server; use
// SetContentType / SetConnectionClose for the ones that are settable.
func (ctx *RequestCtx) SetHeader(key, value string) {
	b := ctx.resp.extra
	b = append(b, key...)
	b = append(b, ": "...)
	b = append(b, value...)
	ctx.resp.extra = append(b, '\r', '\n')
}

// Write appends to the response body; RequestCtx is an io.Writer.
func (ctx *RequestCtx) Write(p []byte) (int, error) {
	ctx.resp.body = append(ctx.resp.body, p...)
	return len(p), nil
}

// WriteString appends to the response body.
func (ctx *RequestCtx) WriteString(s string) (int, error) {
	ctx.resp.body = append(ctx.resp.body, s...)
	return len(s), nil
}

// SetConnectionClose makes this response the connection's last.
func (ctx *RequestCtx) SetConnectionClose() { ctx.resp.connClose = true }

// WillClose reports whether the server will close the connection after
// the current response regardless of anything else the handler does:
// the client asked for close, the server is draining, the connection
// hit MaxRequestsPerConn, or the handler already called
// SetConnectionClose. Raw-mode handlers (reverse proxies) consult this
// to emit a matching Connection header in the bytes they serialize
// themselves.
func (ctx *RequestCtx) WillClose() bool {
	s := ctx.srv
	return ctx.resp.connClose || !ctx.req.keepAlive || s.draining.Load() ||
		(s.cfg.MaxRequestsPerConn > 0 && ctx.state.reqs >= s.cfg.MaxRequestsPerConn)
}

// ---- raw responses ----
//
// A raw-mode handler bypasses the server's serializer: it appends a
// complete, correctly framed HTTP/1.1 response (status line, headers,
// CRLF, body) straight onto the connection's write buffer. This is the
// hook the proxyaff layer relays upstream responses through — the bytes
// read from a backend go into the downstream buffer with one copy and
// no intermediate objects. The handler owns the framing: the response
// must carry Content-Length (or a Connection: close header matching
// WillClose/SetConnectionClose for a close-delimited body), because the
// server appends nothing after the handler returns.

// BeginRawResponse switches the current exchange to raw mode. After the
// call the server will not serialize the ctx's status/header/body state;
// everything sent for this request must go through RawWrite, RawBuffer
// or RawFlush.
func (ctx *RequestCtx) BeginRawResponse() { ctx.resp.raw = true }

// RawWrite appends pre-serialized response bytes to the write buffer.
func (ctx *RequestCtx) RawWrite(p []byte) { ctx.wbuf = append(ctx.wbuf, p...) }

// RawWriteString appends pre-serialized response bytes to the write
// buffer.
func (ctx *RequestCtx) RawWriteString(s string) { ctx.wbuf = append(ctx.wbuf, s...) }

// RawBuffer returns the write buffer's free capacity, grown to at least
// n bytes, so body bytes can be read from another connection directly
// into the response buffer. After filling m <= len bytes, commit them
// with RawAdvance(m).
func (ctx *RequestCtx) RawBuffer(n int) []byte {
	if free := cap(ctx.wbuf) - len(ctx.wbuf); free < n {
		nb := make([]byte, len(ctx.wbuf), 2*cap(ctx.wbuf)+n)
		copy(nb, ctx.wbuf)
		ctx.wbuf = nb
	}
	return ctx.wbuf[len(ctx.wbuf):cap(ctx.wbuf)]
}

// RawAdvance commits n bytes previously filled into RawBuffer's slice.
func (ctx *RequestCtx) RawAdvance(n int) { ctx.wbuf = ctx.wbuf[:len(ctx.wbuf)+n] }

// RawBuffered reports how many response bytes are accumulated and not
// yet flushed (including responses to earlier pipelined requests).
func (ctx *RequestCtx) RawBuffered() int { return len(ctx.wbuf) }

// RawFlush writes the accumulated response bytes now — a raw-mode
// handler streaming a large body calls this periodically so the buffer
// stays bounded. Outside raw mode the server flushes on its own
// schedule and handlers should not call this.
func (ctx *RequestCtx) RawFlush() error { return ctx.flush() }

// ---- protocol upgrades ----
//
// An HTTP/1.1 Upgrade (RFC 9110 §7.8) permanently hands the connection
// to another protocol. The hooks below keep that handoff on the worker:
// the upgrading handler serializes its 101 in raw mode, then either
// hijacks (the takeover serves all future passes, parking through the
// same flow-table Requeue path as keep-alive HTTP — the wsaff layer) or
// pumps the connection inline to completion (the proxyaff tunnel).

// Server returns the Server serving this request — for handlers and
// sibling layers (the proxyaff tunnel) that need server-wide facilities
// such as the transport's connection budget.
func (ctx *RequestCtx) Server() *Server { return ctx.srv }

// CoarseNow returns the serving worker's coarse clock — wall time as of
// that worker's last event-loop iteration, at most ~50ms stale.
// Handlers and sibling layers (proxyaff's health ejection and exchange
// deadlines) use it instead of time.Now when per-request clock reads
// would otherwise pile up; deadlines and health windows are hundreds of
// milliseconds and up, so the slack is noise.
func (ctx *RequestCtx) CoarseNow() time.Time { return ctx.srv.srv.CoarseNow(ctx.worker) }

// NotifyParkClose registers fn to run when the serve layer closes this
// connection while it is parked between passes — shed LIFO under
// descriptor or budget pressure, peer vanished mid-park, or shutdown
// swept the parked population. fn runs once, on the closing goroutine
// (a worker's event loop or an acceptor), and must not block. Layers that register
// parked connections in their own indexes (wsaff's shards) use it to
// unregister immediately instead of waiting for a keep-alive probe to
// find the corpse. It is not called when the handler side closes the
// connection itself.
func (ctx *RequestCtx) NotifyParkClose(fn func()) { ctx.state.onParkClose = fn }

// Hijack switches the connection to takeover mode: after the current
// handler returns and its response (serialized by the handler in raw
// mode — typically a 101) has flushed, the server stops speaking HTTP
// on this connection and instead calls t for the rest of its life, one
// pass per available input, starting with an immediate first pass on
// this same worker. Any input already buffered beyond the current
// request (frames the client pipelined behind its upgrade request) is
// replayed to the takeover before fresh transport reads.
func (ctx *RequestCtx) Hijack(t TakeoverFunc) { ctx.hijack = t }

// NetConn returns the current pass's transport connection — for
// handlers that relay raw bytes in both directions (the proxyaff
// 101 tunnel). Reads through it replay parked and residual input
// correctly; a handler that touches it owns the connection's framing
// from that point on and must SetConnectionClose so the server does
// not try to keep serving HTTP on it.
func (ctx *RequestCtx) NetConn() net.Conn { return ctx.conn }

// Residual returns the unconsumed input bytes buffered beyond the
// current request — what a client pipelined behind an upgrade request —
// and consumes them from the HTTP layer. The slice aliases the worker
// arena: copy it or relay it before the handler returns.
func (ctx *RequestCtx) Residual() []byte {
	b := ctx.rbuf[ctx.rpos:ctx.rlen]
	ctx.rpos = ctx.rlen
	return b
}

// ---- serialization ----

var (
	crlf        = []byte("\r\n")
	status200   = "HTTP/1.1 200 OK\r\n"
	serverColon = "Server: "
	dateColon   = "\r\nDate: "
	ctypeColon  = "\r\nContent-Type: "
	clenColon   = "\r\nContent-Length: "
	connClose   = "Connection: close\r\n"
)

func appendStatusLine(b []byte, code int) []byte {
	if code == http.StatusOK {
		return append(b, status200...)
	}
	b = append(b, "HTTP/1.1 "...)
	b = strconv.AppendInt(b, int64(code), 10)
	b = append(b, ' ')
	if text := http.StatusText(code); text != "" {
		b = append(b, text...)
	} else {
		b = append(b, "Status"...)
	}
	return append(b, '\r', '\n')
}

// appendResponse serializes the handler's response onto the write
// buffer. HEAD responses carry the Content-Length of the body they
// suppress, per RFC 9110. Raw-mode responses are already serialized in
// the write buffer and get nothing appended.
func (ctx *RequestCtx) appendResponse(closing bool) {
	if ctx.resp.raw {
		return
	}
	b := ctx.wbuf
	b = appendStatusLine(b, ctx.resp.status)
	b = append(b, serverColon...)
	b = append(b, ctx.srv.name...)
	b = append(b, dateColon...)
	b = ctx.srv.date.appendTo(b)
	b = append(b, ctypeColon...)
	b = append(b, ctx.resp.contentType...)
	b = append(b, clenColon...)
	b = strconv.AppendInt(b, int64(len(ctx.resp.body)), 10)
	b = append(b, crlf...)
	b = append(b, ctx.resp.extra...)
	if closing {
		b = append(b, connClose...)
	}
	b = append(b, crlf...)
	if !equalFold(ctx.req.method, "head") {
		b = append(b, ctx.resp.body...)
	}
	ctx.wbuf = b
}

// writeError flushes any pending pipelined responses followed by a
// minimal close-delimited error response.
func (ctx *RequestCtx) writeError(e *protoError) {
	b := ctx.wbuf
	b = appendStatusLine(b, e.code)
	b = append(b, "Content-Length: 0\r\nConnection: close\r\n\r\n"...)
	ctx.wbuf = b
	ctx.flush() // best effort; the connection closes either way
}
