package httpaff

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeeds is the shared seed corpus: every shape the handwritten
// parser tests exercise, valid and hostile. The committed corpus under
// testdata/fuzz/FuzzParseHead extends it with fuzzer-found inputs.
var fuzzSeeds = []string{
	"GET /x/y?a=1&b=2 HTTP/1.1\r\nHost: h\r\n\r\n",
	"POST /u HTTP/1.1\r\nHost: example.test\r\nContent-Length:  42\r\nX-Custom:\tspaced value \r\nCONNECTION: Keep-Alive\r\n\r\n",
	"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
	"GARBAGE\r\n\r\n",
	"GET /\r\n\r\n",
	"GET  HTTP/1.1\r\n\r\n",
	"GET / SPDY/3\r\n\r\n",
	"GET / HTTP/1.1\r\nbroken\r\n\r\n",
	"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
	"GET / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
	"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
	"GET / HTTP/1.1\r\nContent-Length:\r\n\r\n",
	"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n",
	"POST / HTTP/1.1\r\ncontent-length: 4\r\nCONTENT-LENGTH: 9\r\n\r\n",
	"HEAD /h HTTP/1.1\r\n\r\n",
	"GET /ws HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: x\r\nSec-WebSocket-Version: 13\r\n\r\n",
	"\r\n\r\n",
	"A B C\r\nX:\r\n\r\n",
}

// FuzzParseHead hammers the zero-copy request parser with arbitrary
// head bytes. The parser's contract under fuzzing:
//
//   - never panic, whatever the bytes;
//   - on success, the request-line views are non-empty, alias the
//     input buffer, and Content-Length is within the buffering cap;
//   - parsing is deterministic: the same bytes parse to the same
//     result twice (the parser must not leave state behind in the ctx).
func FuzzParseHead(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		end := bytes.Index(data, crlfCRLF)
		if end < 0 {
			// readRequest only hands parseHead a complete head; mirror
			// that contract by completing the terminator ourselves.
			data = append(data, crlfCRLF...)
			end = len(data) - 4
		}
		head := data[:end+2]

		ctx := newTestCtx()
		if len(head) > len(ctx.rbuf) {
			ctx.rbuf = make([]byte, len(head))
		}
		copy(ctx.rbuf, head)
		ctx.rlen = len(head)
		err := ctx.parseHead(ctx.rbuf[:len(head)])
		if err != nil {
			var pe *protoError
			if !errors.As(err, &pe) {
				t.Fatalf("parseHead returned a non-protocol error: %v", err)
			}
			return
		}
		if len(ctx.req.method) == 0 || len(ctx.req.uri) == 0 || len(ctx.req.proto) == 0 {
			t.Fatalf("accepted request with empty views: method=%q uri=%q proto=%q from %q",
				ctx.req.method, ctx.req.uri, ctx.req.proto, head)
		}
		if ctx.req.contentLength < 0 || ctx.req.contentLength > 1<<30 {
			t.Fatalf("accepted Content-Length %d outside [0, 2^30] from %q", ctx.req.contentLength, head)
		}
		for _, h := range ctx.req.headers {
			if len(h.key) == 0 {
				t.Fatalf("accepted header with empty key from %q", head)
			}
		}
		method1, uri1, nHeaders := string(ctx.req.method), string(ctx.req.uri), len(ctx.req.headers)

		// Determinism: a second parse of the same bytes in the same ctx
		// (the keep-alive reuse pattern) must agree.
		if err := ctx.parseHead(ctx.rbuf[:len(head)]); err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if string(ctx.req.method) != method1 || string(ctx.req.uri) != uri1 || len(ctx.req.headers) != nHeaders {
			t.Fatalf("reparse disagreed: %q/%q/%d vs %q/%q/%d",
				ctx.req.method, ctx.req.uri, len(ctx.req.headers), method1, uri1, nHeaders)
		}
	})
}
