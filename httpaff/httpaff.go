// Package httpaff is a core-local HTTP/1.1 serving layer on top of
// serve: keep-alive and pipelining with zero allocations per request on
// the steady-state path, built so that *memory* stays as core-local as
// the connections the underlying server routes.
//
// The paper evaluates Affinity-Accept through a real web workload
// (§6.2), where the win is that every phase of a connection's
// processing touches one core's caches. A user-space HTTP layer throws
// that away if its request objects and I/O buffers bounce between
// workers — which is exactly what a process-wide sync.Pool does: any
// worker can drain objects another worker's cache is warm for. httpaff
// instead gives every worker a private arena of pooled RequestCtx
// objects (request state plus read/write buffers). A worker acquires a
// context from its own arena at the start of a handler pass and
// releases it to the same arena at the end; nothing is ever handed
// across workers. When a keep-alive connection parks between requests
// (Server.Requeue) and §3.3.2 migration re-points its flow group, the
// next pass runs on the new owning worker using that worker's warm
// arena — the connection moved, the memory never did.
//
// The per-worker pool counters (alloc / reuse / drop, surfaced through
// serve.Stats) prove the claim: after startup the reuse rate sits at
// ~100%, because the one-connection-at-a-time worker model needs
// exactly one warm context per worker.
package httpaff

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept/internal/obs"
	"affinityaccept/serve"
)

// HandlerFunc serves one parsed request. The ctx — including every
// byte slice obtained from it — is owned by the worker's arena and must
// not be retained after the handler returns.
type HandlerFunc func(ctx *RequestCtx)

// Config parameterizes a Server. Handler is required; everything else
// has working defaults.
type Config struct {
	// Network and Addr are passed through to the serve layer
	// (defaults "tcp", "127.0.0.1:0").
	Network string
	Addr    string

	// Workers is the worker / listener / arena count (0 = GOMAXPROCS).
	Workers int

	// Handler serves every request. Use (*Router).Serve for path
	// dispatch.
	Handler HandlerFunc

	// ServerName is the Server response header value (default
	// "httpaff").
	ServerName string

	// ReadBufferSize and WriteBufferSize are the initial sizes of each
	// pooled context's request and response buffers (defaults 4096).
	// Buffers grow on demand and oversized ones are shed on release,
	// so these size the steady state, not a limit.
	ReadBufferSize  int
	WriteBufferSize int

	// MaxHeaderBytes bounds the request line plus headers (default
	// 8192); larger requests are answered 431 and closed.
	MaxHeaderBytes int
	// MaxBodyBytes bounds a request body (default 1 MiB); larger
	// bodies are answered 413 and closed.
	MaxBodyBytes int

	// MaxRequestsPerConn closes a connection (Connection: close) after
	// it has served this many requests (0 = unlimited).
	MaxRequestsPerConn int

	// IdleTimeout closes a keep-alive connection parked longer than
	// this between requests (0 = no limit). Enforced twice over: as the
	// transport read deadline, and as the park deadline the owning
	// worker's event-loop sweep reaps without waking anything (see
	// serve.ParkDeadliner).
	IdleTimeout time.Duration
	// ReadTimeout bounds reading one request once the connection
	// blocks for more bytes (0 = fall back to IdleTimeout; a
	// connection stalled mid-request is idle capacity too, and workers
	// serve one connection at a time).
	ReadTimeout time.Duration
	// HeaderTimeout bounds reading one request's head — request line
	// plus headers — separately from the body reads (which stay under
	// ReadTimeout). This is the slowloris defense: a client dripping
	// header bytes holds its worker captive at most this long, however
	// slowly it feeds the socket, because the deadline is absolute from
	// the first blocking head read and is not extended per byte.
	// 0 = fall back to ReadTimeout, then IdleTimeout.
	HeaderTimeout time.Duration

	// MaxInflightHeaders, when positive, caps how many workers may
	// simultaneously be blocked reading a *fresh* connection's first
	// request head. Workers serve one connection at a time, so each
	// slow first read holds a whole worker; a cap below Workers
	// reserves the remainder for connections that have already proved
	// themselves (keep-alive passes are exempt). Fresh connections over
	// the cap get an immediate 503 with Retry-After and are closed
	// before any worker blocks for them. 0 = no cap.
	MaxInflightHeaders int

	// ShedOnOverload answers fresh connections 503-with-Retry-After
	// while every worker is over its §3.3.1 busy watermark, instead of
	// queueing them behind work the server is already failing to keep
	// up with. Established keep-alive connections are exempt: overload
	// backpressure sheds newcomers, never the flows whose locality the
	// server has been curating.
	ShedOnOverload bool

	// RetryAfter is the Retry-After delay advertised in shed 503
	// responses, rounded up to whole seconds (default 1s).
	RetryAfter time.Duration

	// MaxPooledPerWorker caps each worker arena's free list (default
	// 32); contexts released beyond the cap are dropped to the GC.
	MaxPooledPerWorker int

	// WorkerUpstream, if set, reports each worker's upstream
	// connection-pool counters and is passed through to
	// serve.Config.WorkerUpstream, so Stats carries them. The proxyaff
	// layer wires its per-worker backend pools here.
	WorkerUpstream func(worker int) serve.PoolStats

	// ObsSampleShift subsamples the request-path histograms: 1 in
	// 2^ObsSampleShift handler passes is timed and sized (0 = every
	// pass). The per-pass cost of a sampled pass is two clock reads and
	// six atomic adds — cheap enough to keep at 0 in most deployments;
	// the knob exists for request rates where even that shows.
	ObsSampleShift uint
	// EventRingSize and HistSubBits pass through to the transport's
	// observability plane (serve.Config); HistSubBits also sets the
	// resolution of the HTTP layer's latency/size histograms.
	EventRingSize int
	HistSubBits   int
	// DisableObs turns off event tracing and histograms in both this
	// layer and the transport.
	DisableObs bool

	// The remaining fields pass straight through to serve.Config:
	// queueing, stealing, migration and transport-level admission
	// (per-IP accept rate limiting, the connection budget with LIFO
	// parked shedding) behave exactly as for a raw TCP server.
	Backlog              int
	StealRatio           int
	HighPct, LowPct      float64
	DisableReusePort     bool
	FlowGroups           int
	MigrateInterval      time.Duration
	DisableMigration     bool
	MaxConns             int
	PerIPAcceptRate      float64
	PerIPAcceptBurst     int
	Chips                int
	DisableDistanceAware bool
	AdaptiveMigration    bool
	PinWorkers           bool
}

func (c *Config) fill() error {
	if c.Handler == nil {
		return errors.New("httpaff: Config.Handler is required")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ServerName == "" {
		c.ServerName = "httpaff"
	}
	if c.ReadBufferSize <= 0 {
		c.ReadBufferSize = 4096
	}
	if c.WriteBufferSize <= 0 {
		c.WriteBufferSize = 4096
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 8192
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxPooledPerWorker <= 0 {
		c.MaxPooledPerWorker = 32
	}
	if c.MaxRequestsPerConn < 0 || c.IdleTimeout < 0 || c.ReadTimeout < 0 ||
		c.HeaderTimeout < 0 || c.MaxInflightHeaders < 0 || c.RetryAfter < 0 {
		return errors.New("httpaff: limits must be non-negative")
	}
	if c.EventRingSize < 0 || c.HistSubBits < 0 || c.ObsSampleShift > 62 {
		return errors.New("httpaff: EventRingSize and HistSubBits must be non-negative, ObsSampleShift at most 62")
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	return nil
}

// Server is an HTTP/1.1 server whose transport is serve.Server: per
// worker SO_REUSEPORT listeners, flow-group routing, §3.3.1 stealing,
// §3.3.2 migration, and Requeue-parked keep-alive connections — plus a
// per-worker arena keeping request memory core-local.
type Server struct {
	cfg     Config
	srv     *serve.Server
	handler HandlerFunc
	name    []byte
	arenas  []*arena

	draining atomic.Bool
	started  atomic.Bool
	stopOnce sync.Once

	// date is the cached RFC 1123 Date header value, refreshed once a
	// second so responses never format time on the hot path. It is held
	// in atomics (seqlock-style, like the event rings) rather than an
	// atomic.Pointer to a fresh buffer so the once-a-second refresh
	// allocates nothing: a background tick that allocated would show up
	// as a residual in the steady-state zero-alloc gates.
	date        atomicDate
	dateScratch [dateWords * 8]byte // refreshDate's format buffer (single writer)
	stopDate    chan struct{}

	// shed503 is the complete, pre-serialized 503-with-Retry-After
	// response admission sheds write: built once at New so the shed
	// path — which exists to protect an overloaded server — costs one
	// raw write and no allocation, no arena, no serializer.
	shed503 []byte

	// inflightHeaders gauges workers currently blocked reading a fresh
	// connection's first request head (MaxInflightHeaders > 0 only);
	// admitw holds the per-worker admission counters.
	inflightHeaders atomic.Int64
	admitw          []admitCounters

	// obsw holds each worker's request-path histograms (service
	// latency, request/response sizes); obsMask is the sampling mask
	// derived from ObsSampleShift (0 = record every pass). obsOn gates
	// the whole plane so DisableObs removes even the clock reads.
	obsw    []workerObs
	obsMask uint64
	obsOn   bool
}

// admitCounters is one worker's admission-policy counters, updated only
// from that worker's goroutine (atomics so Admission can read them from
// anywhere, matching the arena counters' discipline).
type admitCounters struct {
	headerTimeouts atomic.Uint64 // request heads that hit their read deadline
	headerSheds    atomic.Uint64 // fresh conns 503'd over MaxInflightHeaders
	overloadSheds  atomic.Uint64 // fresh conns 503'd while all workers busy
}

// New creates a Server and binds its listeners; call Start to begin
// serving.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	retry := int((cfg.RetryAfter + time.Second - 1) / time.Second)
	s := &Server{
		cfg:      cfg,
		handler:  cfg.Handler,
		name:     []byte(cfg.ServerName),
		arenas:   make([]*arena, cfg.Workers),
		stopDate: make(chan struct{}),
		admitw:   make([]admitCounters, cfg.Workers),
		shed503: []byte(fmt.Sprintf(
			"HTTP/1.1 503 Service Unavailable\r\nServer: %s\r\nRetry-After: %d\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
			cfg.ServerName, retry)),
	}
	for i := range s.arenas {
		s.arenas[i] = &arena{s: s}
	}
	if !cfg.DisableObs {
		s.obsOn = true
		s.obsMask = uint64(1)<<cfg.ObsSampleShift - 1
		s.obsw = make([]workerObs, cfg.Workers)
		for i := range s.obsw {
			s.obsw[i].svc = obs.NewHist(cfg.HistSubBits)
			s.obsw[i].reqBytes = obs.NewHist(cfg.HistSubBits)
			s.obsw[i].respBytes = obs.NewHist(cfg.HistSubBits)
		}
	}
	s.refreshDate()
	srv, err := serve.New(serve.Config{
		Network:              cfg.Network,
		Addr:                 cfg.Addr,
		Workers:              cfg.Workers,
		WorkerHandler:        s.serveConn,
		Backlog:              cfg.Backlog,
		StealRatio:           cfg.StealRatio,
		HighPct:              cfg.HighPct,
		LowPct:               cfg.LowPct,
		DisableReusePort:     cfg.DisableReusePort,
		FlowGroups:           cfg.FlowGroups,
		MigrateInterval:      cfg.MigrateInterval,
		DisableMigration:     cfg.DisableMigration,
		MaxConns:             cfg.MaxConns,
		PerIPAcceptRate:      cfg.PerIPAcceptRate,
		PerIPAcceptBurst:     cfg.PerIPAcceptBurst,
		Chips:                cfg.Chips,
		DisableDistanceAware: cfg.DisableDistanceAware,
		AdaptiveMigration:    cfg.AdaptiveMigration,
		PinWorkers:           cfg.PinWorkers,
		EventRingSize:        cfg.EventRingSize,
		HistSubBits:          cfg.HistSubBits,
		DisableObs:           cfg.DisableObs,
		WorkerPool: func(worker int) serve.PoolStats {
			return s.arenas[worker].counters.Snapshot()
		},
		WorkerUpstream: cfg.WorkerUpstream,
	})
	if err != nil {
		return nil, fmt.Errorf("httpaff: %w", err)
	}
	s.srv = srv
	return s, nil
}

// Start launches the transport server and the Date-header refresher.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go s.dateLoop()
	s.srv.Start()
}

// Shutdown drains gracefully: in-flight responses switch to
// Connection: close, parked keep-alive connections are closed, queued
// connections are served, and in-flight handlers finish. A ctx deadline
// force-closes whatever is still queued (see serve.Server.Shutdown).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.srv.Shutdown(ctx)
	s.stopOnce.Do(func() { close(s.stopDate) })
	return err
}

// Addr returns the bound address (useful with ":0"), or nil before a
// successful bind.
func (s *Server) Addr() net.Addr { return s.srv.Addr() }

// Workers reports the configured worker count.
func (s *Server) Workers() int { return s.srv.Workers() }

// Sharded reports whether the transport runs one SO_REUSEPORT listener
// per worker.
func (s *Server) Sharded() bool { return s.srv.Sharded() }

// FlowGroups reports the transport's (rounded-up) flow-group count.
func (s *Server) FlowGroups() int { return s.srv.FlowGroups() }

// OwnerOf reports which worker currently owns the flow group a remote
// port hashes into.
func (s *Server) OwnerOf(remotePort uint16) int { return s.srv.OwnerOf(remotePort) }

// Stats snapshots the transport counters; with the arena hook wired,
// Stats.Pool and each WorkerStats.Pool carry the per-worker
// alloc/reuse/drop pool counters, and with Config.WorkerUpstream set,
// Stats.Upstream carries the upstream connection-pool counters.
func (s *Server) Stats() serve.Stats { return s.srv.Stats() }

// Transport exposes the underlying serve.Server — for StatsHandler and
// other diagnostics that want the transport object itself rather than a
// snapshot.
func (s *Server) Transport() *serve.Server { return s.srv }

// dateLoop refreshes the cached Date header once a second until
// Shutdown.
func (s *Server) dateLoop() {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.refreshDate()
		case <-s.stopDate:
			return
		}
	}
}

func (s *Server) refreshDate() {
	b := time.Now().UTC().AppendFormat(s.dateScratch[:0], http.TimeFormat)
	s.date.store(b)
}

// dateWords is the atomicDate payload size in uint64 words; 4 words =
// 32 bytes comfortably holds the 29-byte RFC 1123 form.
const dateWords = 4

// atomicDate publishes a short byte string through plain atomics — a
// single-writer seqlock. The reader never sees a torn value (the
// version check rejects concurrent writes) and, unlike handing out a
// shared buffer, every access is an atomic operation, so the race
// detector stays satisfied without a per-refresh allocation.
type atomicDate struct {
	seq atomic.Uint32 // odd while a store is in flight
	n   atomic.Uint32
	w   [dateWords]atomic.Uint64
}

// store publishes b (at most dateWords*8 bytes; single writer).
func (d *atomicDate) store(b []byte) {
	d.seq.Add(1) // now odd: readers retry
	var w [dateWords]uint64
	for i, c := range b {
		w[i/8] |= uint64(c) << (8 * uint(i%8))
	}
	for i := range d.w {
		d.w[i].Store(w[i])
	}
	d.n.Store(uint32(len(b)))
	d.seq.Add(1) // even again: value is consistent
}

// appendTo appends the current value to dst without allocating beyond
// dst's own growth.
func (d *atomicDate) appendTo(dst []byte) []byte {
	for {
		s1 := d.seq.Load()
		if s1&1 != 0 {
			continue // store in flight
		}
		n := d.n.Load()
		var w [dateWords]uint64
		for i := range d.w {
			w[i] = d.w[i].Load()
		}
		if d.seq.Load() != s1 {
			continue // raced with a store; reread
		}
		if n > dateWords*8 {
			n = dateWords * 8
		}
		for i := uint32(0); i < n; i++ {
			dst = append(dst, byte(w[i/8]>>(8*uint(i%8))))
		}
		return dst
	}
}

// TakeoverFunc serves one pass of a connection whose protocol has been
// upgraded away from HTTP (RequestCtx.Hijack). It runs inline on the
// worker goroutine, exactly like an HTTP handler pass: worker is the
// serving worker's index and nc is the pass's transport view (which
// replays the park wake-up byte and any residual buffered input).
// Returning park=true hands the connection back to the server to park
// until its next input byte — the takeover owns the read deadline;
// returning false means the takeover has closed the connection (or
// will: the server does nothing further with it).
type TakeoverFunc func(worker int, nc net.Conn) (park bool)

// conn carries the HTTP state that must survive Requeue passes — the
// per-connection request count, and after a Hijack the takeover
// function and residual input. It is allocated once per accepted
// connection (the only steady-state allocation in the subsystem) and
// amortizes across every keep-alive request the connection serves.
type conn struct {
	net.Conn
	reqs int // requests served on this connection so far

	// takeover, once set by Hijack, replaces HTTP serving for every
	// later pass; residual holds input bytes that were read beyond the
	// upgrade request and must replay before the transport's.
	takeover TakeoverFunc
	residual []byte

	// onParkClose, set via RequestCtx.NotifyParkClose, fires when the
	// serve layer closes this connection while parked — shed under
	// descriptor or budget pressure, idle deadline, peer gone, or
	// shutdown. See serve.ParkCloseNotifier for the contract.
	onParkClose func()

	// parkDL mirrors the most recently armed read deadline, so the
	// serve layer's park-deadline sweep (serve.ParkDeadliner) enforces
	// the same instant the transport would. The last deadline armed
	// before a Requeue is always the park/idle deadline.
	parkDL time.Time
}

// SetReadDeadline records the deadline for the park sweep and forwards
// it to the transport.
func (c *conn) SetReadDeadline(t time.Time) error {
	c.parkDL = t
	return c.Conn.SetReadDeadline(t)
}

// ParkDeadline implements serve.ParkDeadliner: the owning worker's
// event loop closes this connection if it is still parked past the
// deadline, without spending a goroutine on the wait.
func (c *conn) ParkDeadline() time.Time { return c.parkDL }

// ParkClosed implements serve.ParkCloseNotifier by forwarding to the
// registered hook, so layers that index parked connections (wsaff's
// shards) learn of a shed immediately rather than at the next
// keep-alive probe.
func (c *conn) ParkClosed() {
	if c.onParkClose != nil {
		c.onParkClose()
	}
}

// Read replays residual post-upgrade bytes before touching the
// transport. On the HTTP path residual is always nil: one predictable
// branch.
func (c *conn) Read(b []byte) (int, error) {
	if len(c.residual) > 0 {
		n := copy(b, c.residual)
		c.residual = c.residual[n:]
		return n, nil
	}
	return c.Conn.Read(b)
}

// InputPending reports whether post-upgrade residual bytes are queued
// for replay; see the serve layer's park wrapper for the contract.
func (c *conn) InputPending() bool { return len(c.residual) > 0 }

// NetConn exposes the wrapped transport connection. The serve layer's
// event loop unwraps through NetConn links to reach the raw descriptor
// it registers with the poller — without this hop every httpaff (and
// wsaff, which parks through this wrapper) connection would silently
// degrade to the parker-goroutine fallback. A pending residual replay
// never races the poller: the park path refuses to park a connection
// whose InputPending reports buffered bytes.
func (c *conn) NetConn() net.Conn { return c.Conn }

// unwrap recovers the state wrapper from whatever the serve layer hands
// the handler: the wrapper itself on the first pass, or the park
// wrapper (which replays the wake-up byte and exposes NetConn) on every
// later pass.
func unwrap(nc net.Conn) *conn {
	if c, ok := nc.(*conn); ok {
		return c
	}
	if u, ok := nc.(interface{ NetConn() net.Conn }); ok {
		if c, ok := u.NetConn().(*conn); ok {
			return c
		}
	}
	return nil
}

// serveConn is the serve.WorkerHandler: one handler pass over a
// connection. It runs inline on the worker goroutine, which is what
// makes lock-free worker-local arenas sound — the arena for worker i is
// only ever touched from worker i's goroutine.
func (s *Server) serveConn(worker int, nc net.Conn) {
	c := unwrap(nc)
	headerSlot := false
	if c == nil {
		// First pass on a fresh transport connection: the admission
		// gates run here, before any arena state is touched, and only
		// here — a connection that has served a request is established
		// and exempt, so overload pressure sheds newcomers while the
		// flows the server has been curating keep their workers.
		if s.cfg.ShedOnOverload && s.srv.Overloaded() {
			s.admitw[worker].overloadSheds.Add(1)
			port, group := connGroup(s, nc)
			s.srv.RecordGroupEvent(worker, obs.KindShed, group, 0, port, 0)
			nc.Write(s.shed503)
			nc.Close()
			return
		}
		if s.cfg.MaxInflightHeaders > 0 {
			if !s.takeHeaderSlot() {
				s.admitw[worker].headerSheds.Add(1)
				port, group := connGroup(s, nc)
				s.srv.RecordGroupEvent(worker, obs.KindShed, group, 1, port, 0)
				nc.Write(s.shed503)
				nc.Close()
				return
			}
			headerSlot = true
		}
		c = &conn{Conn: nc}
		nc = c
	}
	if c.takeover != nil {
		// The connection's protocol was upgraded away from HTTP on an
		// earlier pass: the takeover serves it from here on, still one
		// pass per available input, still on the flow group's owner.
		s.runTakeover(worker, c, nc)
		return
	}
	a := s.arenas[worker]
	ctx := a.acquire()
	ctx.begin(nc, c, worker)
	ctx.headerSlot = headerSlot
	park := s.servePass(ctx)
	hijacked := c.takeover != nil
	ctx.end()
	a.release(ctx)
	if hijacked {
		// The upgrade response has flushed; run the takeover's first
		// pass immediately, on this same worker, with the client's
		// post-upgrade bytes (saved as residual) next in line to read.
		s.runTakeover(worker, c, nc)
		return
	}
	if !park {
		return
	}
	// Input drained: arm the idle deadline (or clear the request read
	// deadline) and hand the connection back. The next request bytes
	// re-route it through the flow table, so a migrated group's
	// connection comes back on the new owning worker. The base is the
	// worker's coarse clock — no time.Now on the park path.
	var dl time.Time
	if s.cfg.IdleTimeout > 0 {
		dl = s.srv.CoarseNow(worker).Add(s.cfg.IdleTimeout)
	}
	nc.SetReadDeadline(dl)
	if !s.srv.Requeue(nc) {
		nc.Close()
	}
}

// takeHeaderSlot claims one MaxInflightHeaders slot, CAS-bounded so
// concurrent workers can never overshoot the cap.
func (s *Server) takeHeaderSlot() bool {
	limit := int64(s.cfg.MaxInflightHeaders)
	for {
		n := s.inflightHeaders.Load()
		if n >= limit {
			return false
		}
		if s.inflightHeaders.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// runTakeover runs one takeover pass and parks the connection if asked.
// The takeover owns the read deadline (a parked WebSocket has no idle
// timeout — its keep-alive is protocol-level pings), so unlike the HTTP
// park path the server arms nothing here.
func (s *Server) runTakeover(worker int, c *conn, nc net.Conn) {
	if c.takeover(worker, nc) {
		if !s.srv.Requeue(nc) {
			nc.Close()
		}
	}
}

// flushEvery bounds how many pipelined response bytes accumulate before
// a mid-pass write, so deep pipelines don't balloon the write buffer.
const flushEvery = 32 << 10

// servePass serves requests until the connection's buffered input is
// drained (park: true), the protocol says stop, or an error closes the
// connection (park: false). Responses to pipelined requests accumulate
// and flush in one write.
func (s *Server) servePass(ctx *RequestCtx) (park bool) {
	c := ctx.state
	var ow *workerObs
	if s.obsOn {
		ow = &s.obsw[ctx.worker]
	}
	for {
		// Sampled passes time head-read start -> response flush (or, for
		// a mid-pipeline request, response serialization) and size the
		// request/response; the cost is two clock reads and six atomic
		// adds, all worker-local.
		var t0, outBefore int64
		sampled := false
		if ow != nil {
			ow.n++
			if ow.n&s.obsMask == 0 {
				sampled = true
				t0 = obs.Nanos()
				outBefore = int64(ctx.written())
			}
		}
		err := ctx.readRequest()
		if ctx.headerSlot {
			// The fresh connection's first head read is over (parsed or
			// failed): it no longer holds a worker captive on input it
			// has never justified, so its in-flight-headers slot frees.
			ctx.headerSlot = false
			ctx.srv.inflightHeaders.Add(-1)
		}
		if err != nil {
			var pe *protoError
			if errors.As(err, &pe) {
				ctx.writeError(pe)
			} else {
				ctx.flush() // whatever pipelined responses are pending
			}
			ctx.conn.Close()
			return false
		}
		c.reqs++
		ctx.resp.reset()
		s.handler(ctx)
		if ctx.hijack != nil {
			// Protocol upgrade: flush the handler's raw-mode response
			// (the 101), preserve any post-upgrade input the client
			// pipelined, and mark the connection taken over. The copy is
			// once per connection lifetime — the arena buffer the bytes
			// sit in is about to be released.
			if ctx.flush() != nil {
				ctx.conn.Close()
				return false
			}
			if ctx.buffered() > 0 {
				c.residual = append([]byte(nil), ctx.rbuf[ctx.rpos:ctx.rlen]...)
			}
			c.takeover = ctx.hijack
			return false
		}
		closing := ctx.WillClose()
		ctx.appendResponse(closing)
		if closing {
			ctx.flush()
			if sampled {
				ow.record(obs.Nanos()-t0, int64(ctx.rpos), int64(ctx.written())-outBefore)
			}
			ctx.conn.Close()
			return false
		}
		if ctx.buffered() == 0 {
			if ctx.flush() != nil {
				ctx.conn.Close()
				return false
			}
			if sampled {
				ow.record(obs.Nanos()-t0, int64(ctx.rpos), int64(ctx.written())-outBefore)
			}
			return true
		}
		if sampled {
			// Mid-pipeline: the response is serialized but rides a later
			// flush; bill through serialization rather than hold the
			// sample hostage to unrelated pipelined requests.
			ow.record(obs.Nanos()-t0, int64(ctx.rpos), int64(ctx.written())-outBefore)
		}
		// More pipelined input is already buffered: keep serving on
		// this worker, flushing periodically.
		if len(ctx.wbuf) >= flushEvery {
			if ctx.flush() != nil {
				ctx.conn.Close()
				return false
			}
		}
	}
}
