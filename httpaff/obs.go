package httpaff

import (
	"encoding/json"
	"io"
	"net"
	"time"

	"affinityaccept/internal/obs"
)

// workerObs is one worker's request-path histograms. Each worker
// records only into its own entry — from its own goroutine, with two
// atomic adds per histogram sample — and the merge across workers
// happens at scrape time, never on the hot path. The pad keeps the
// per-worker pass counter off its neighbors' cache lines.
type workerObs struct {
	svc       *obs.Hist // head-read -> flush service latency, ns
	reqBytes  *obs.Hist // bytes consumed per request (head + body)
	respBytes *obs.Hist // bytes serialized per response
	n         uint64    // pass counter driving the sampling mask
	_         [32]byte
}

// record samples one completed request into the worker's histograms.
func (ow *workerObs) record(svcNs, reqB, respB int64) {
	ow.svc.Record(svcNs)
	ow.reqBytes.Record(reqB)
	ow.respBytes.Record(respB)
}

// mergedSvc returns the service-latency histogram merged across
// workers; empty when observability is off. Diagnostic path: allocates.
func (s *Server) mergedSvc() obs.HistSnapshot {
	if !s.obsOn {
		return obs.HistSnapshot{}
	}
	m := s.obsw[0].svc.Snapshot()
	for i := 1; i < len(s.obsw); i++ {
		m.Merge(s.obsw[i].svc.Snapshot())
	}
	return m
}

// ServiceLatencyQuantiles reports the requested quantiles (0 < q <= 1)
// of the merged server-side service-latency histogram — time from the
// start of a request's head read to its response flush, as measured on
// the workers. The benchmark records these next to the client-observed
// quantiles, so queueing delay (client-side minus server-side) is
// separable from service time. Zeros when observability is disabled.
func (s *Server) ServiceLatencyQuantiles(qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	if !s.obsOn {
		return out
	}
	m := s.mergedSvc()
	for i, q := range qs {
		out[i] = time.Duration(m.Quantile(q))
	}
	return out
}

// WriteObsMetrics renders the HTTP layer's request-path histograms in
// Prometheus text format. The unified MetricsHandler composes it with
// the transport's WriteObsMetrics; it writes nothing when observability
// is disabled.
func (s *Server) WriteObsMetrics(w io.Writer) {
	if !s.obsOn {
		return
	}
	obs.WriteProm(w, "affinity_http_request_duration_seconds",
		"Service latency from head-read start to response flush, measured on the worker.",
		s.mergedSvc(), 1e-9)
	req := s.obsw[0].reqBytes.Snapshot()
	resp := s.obsw[0].respBytes.Snapshot()
	for i := 1; i < len(s.obsw); i++ {
		req.Merge(s.obsw[i].reqBytes.Snapshot())
		resp.Merge(s.obsw[i].respBytes.Snapshot())
	}
	obs.WriteProm(w, "affinity_http_request_size_bytes",
		"Request bytes consumed per request (head plus body).", req, 1)
	obs.WriteProm(w, "affinity_http_response_size_bytes",
		"Response bytes serialized per request.", resp, 1)
}

// Events drains the transport's merged control-plane event timeline;
// see serve.Server.Events.
func (s *Server) Events() []obs.Event { return s.srv.Events() }

// connGroup resolves a connection's remote port and flow group — the
// journey tag httpaff's own events (sheds, header timeouts) carry so
// they stitch into the same per-group timeline as the transport's
// accept/steal/migrate hops. (-1, -1) for portless transports.
func connGroup(s *Server, nc net.Conn) (port int64, group int) {
	if a, ok := nc.RemoteAddr().(*net.TCPAddr); ok {
		return int64(a.Port), s.srv.GroupOfPort(int64(a.Port))
	}
	return -1, -1
}

// eventsBody is the JSON shape EventsHandler serves.
type eventsBody struct {
	Recorded uint64      `json:"recorded"`
	Dropped  uint64      `json:"dropped"`
	Events   []obs.Event `json:"events"`
}

// EventsHandler returns a handler serving the control-plane event
// timeline as JSON: every accept/steal/migrate/park/wake/shed decision
// still held by the trace rings, ordered by sequence number, plus the
// recorded/dropped totals. The since=SEQ query parameter makes polling
// incremental: only events with a larger sequence number are returned,
// so a poller that passes the largest Seq it has seen receives each
// event exactly once. Mount it on a Router path (conventionally
// "/debug/events"). Diagnostic, not hot-path: it allocates.
func EventsHandler(srv *Server) HandlerFunc {
	return func(ctx *RequestCtx) {
		since := uint64(queryInt(ctx.Query(), "since", 0))
		evs := srv.srv.EventsSince(since)
		if evs == nil {
			evs = []obs.Event{}
		}
		out, err := json.Marshal(eventsBody{
			Recorded: srv.srv.EventsRecorded(),
			Dropped:  srv.srv.EventsDropped(),
			Events:   evs,
		})
		if err != nil {
			ctx.SetStatus(500)
			return
		}
		ctx.SetContentType("application/json")
		ctx.Write(out)
	}
}
