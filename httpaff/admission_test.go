package httpaff

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"affinityaccept/internal/testutil"
)

// TestSlowlorisClosedAtHeaderDeadline: a client dripping header bytes
// is cut off at HeaderTimeout — absolute from the first blocking head
// read, not extended per drip — while a concurrent well-behaved
// keep-alive client on the same server completes normally.
func TestSlowlorisClosedAtHeaderDeadline(t *testing.T) {
	const headerTO = 400 * time.Millisecond
	s := start(t, Config{
		Workers:       2,
		HeaderTimeout: headerTO,
		ReadTimeout:   10 * time.Second, // much looser: the head must not inherit it
	})

	// The attacker: send a partial request line, then drip one byte at
	// a time. Each drip would reset a naive per-read deadline; the
	// absolute head deadline must close the conn ~headerTO after the
	// first blocking read regardless.
	atk, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer atk.Close()
	atk.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := atk.Write([]byte("GET / HT")); err != nil {
		t.Fatal(err)
	}
	startT := time.Now()
	done := make(chan time.Duration, 1)
	go func() {
		// Drip until the server hangs up; the write side notices the
		// close a beat after the read side would.
		for {
			if _, err := atk.Write([]byte("T")); err != nil {
				done <- time.Since(startT)
				return
			}
			time.Sleep(50 * time.Millisecond)
			if _, err := atk.Read(make([]byte, 1)); err != nil {
				done <- time.Since(startT)
				return
			}
			atk.SetReadDeadline(time.Time{})
		}
	}()

	// Meanwhile a legitimate keep-alive client runs several requests
	// to completion on the other worker.
	good, br := dial(t, s)
	for i := 0; i < 3; i++ {
		req := fmt.Sprintf("GET /ok%d HTTP/1.1\r\nHost: t\r\n\r\n", i)
		if _, err := good.Write([]byte(req)); err != nil {
			t.Fatalf("well-behaved client write %d: %v", i, err)
		}
		code, _, body := readResponse(t, br)
		if code != 200 || string(body) != fmt.Sprintf("/ok%d", i) {
			t.Fatalf("well-behaved client request %d: code %d body %q", i, code, body)
		}
		time.Sleep(100 * time.Millisecond)
	}

	select {
	case elapsed := <-done:
		// Closed no earlier than the deadline (give the scheduler a
		// little slack) and well before the drip could finish a head.
		if elapsed < headerTO/2 {
			t.Errorf("slowloris closed after %v, before the %v header deadline", elapsed, headerTO)
		}
		if elapsed > 5*time.Second {
			t.Errorf("slowloris survived %v, expected close near %v", elapsed, headerTO)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slowloris connection was never closed")
	}

	testutil.WaitFor(t, 5*time.Second, func() bool {
		return s.Admission().HeaderTimeouts >= 1
	}, "HeaderTimeouts counter never incremented")
	if st := s.Admission(); st.HeaderSheds != 0 || st.OverloadSheds != 0 {
		t.Errorf("unrelated shed counters moved: %+v", st)
	}
}

// TestSlowBodyKeepsReadTimeout: a tight HeaderTimeout must not strangle
// a legitimate upload — body reads re-arm under the looser ReadTimeout.
func TestSlowBodyKeepsReadTimeout(t *testing.T) {
	s := start(t, Config{
		Workers:       1,
		HeaderTimeout: 300 * time.Millisecond,
		ReadTimeout:   5 * time.Second,
	})
	conn, br := dial(t, s)
	if _, err := conn.Write([]byte("POST /up HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// Deliver the body only after the header deadline has elapsed: the
	// head finished in time, so the body budget is ReadTimeout.
	time.Sleep(600 * time.Millisecond)
	if _, err := conn.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	code, _, body := readResponse(t, br)
	if code != 200 || string(body) != "data" {
		t.Fatalf("slow-body upload: code %d body %q", code, body)
	}
	if n := s.Admission().HeaderTimeouts; n != 0 {
		t.Errorf("HeaderTimeouts = %d for a request whose head arrived in time", n)
	}
}

// TestMaxInflightHeadersSheds: with a single header slot occupied by a
// stalled fresh connection, the next fresh connection is answered 503
// with Retry-After and closed before any worker blocks for it — and an
// established keep-alive connection is exempt from the cap.
func TestMaxInflightHeadersSheds(t *testing.T) {
	s := start(t, Config{
		Workers:            2,
		MaxInflightHeaders: 1,
		HeaderTimeout:      20 * time.Second, // safety bound; the test frees the stall itself
	})

	// An established connection first: one full request, then park.
	// Its later requests must ride through even with the slot taken.
	veteran, vbr := dial(t, s)
	if _, err := veteran.Write([]byte("GET /v HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := readResponse(t, vbr); code != 200 {
		t.Fatal("veteran conn first request failed")
	}

	// Occupy the only slot: a fresh conn sending half a request head.
	stall, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	if _, err := stall.Write([]byte("GET /stall HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	testutil.WaitFor(t, 5*time.Second, func() bool {
		return s.Admission().InflightHeaders == 1
	}, "stalled conn never took the header slot")

	// Fresh connections now bounce with 503 — when their pass runs on
	// the free worker. Flow-group routing hashes the source port, so a
	// probe can instead land in the captive worker's queue and sit
	// there; such probes are abandoned (closed) and retried until one
	// draws the free worker. The shed itself is deterministic: any
	// fresh-conn pass that runs while the slot is held must 503.
	shed := false
	for i := 0; i < 20 && !shed; i++ {
		probe, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := probe.Write([]byte("GET /probe HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
			t.Fatal(err)
		}
		probe.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		pbr := bufio.NewReader(probe)
		if _, err := pbr.Peek(1); err != nil {
			probe.Close() // queued behind the captive worker: abandon
			continue
		}
		probe.SetReadDeadline(time.Now().Add(5 * time.Second))
		code, hdr, _ := readResponse(t, pbr)
		if code != 503 {
			t.Fatalf("probe %d: code %d, want 503 while the header slot is held", i, code)
		}
		if hdr["retry-after"] == "" {
			t.Errorf("probe %d: 503 missing Retry-After header: %v", i, hdr)
		}
		if hdr["connection"] != "close" {
			t.Errorf("probe %d: shed 503 must announce Connection: close, got %v", i, hdr)
		}
		// The server must actually close it. The shed path never reads
		// the request bytes, so the close can surface as a reset
		// rather than a clean EOF — either way, no more data.
		if n, err := probe.Read(make([]byte, 1)); err == nil || n > 0 {
			t.Errorf("probe %d: conn not closed after shed 503 (n=%d err=%v)", i, n, err)
		}
		probe.Close()
		shed = true
	}
	if !shed {
		t.Fatal("no probe was ever shed while the header slot was held")
	}
	if n := s.Admission().HeaderSheds; n == 0 {
		t.Error("HeaderSheds = 0 after an observed 503")
	}

	// The veteran keep-alive conn is exempt: it parked after its first
	// request, so its next pass skips the fresh-conn gates entirely.
	// (Its flow group may be owned by the captive worker, in which
	// case the response arrives only after the stall frees below — but
	// it must be a 200, never a shed.)
	if _, err := veteran.Write([]byte("GET /v2 HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
		t.Fatal(err)
	}

	// Finish the stalled head: its slot frees and fresh conns admit
	// again. (The slot is released when readRequest returns, success
	// or failure.)
	if _, err := stall.Write([]byte("Host: t\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if code, _, body := readResponse(t, vbr); code != 200 || string(body) != "/v2" {
		t.Fatalf("veteran conn shed by the header-slot gate: code %d body %q", code, body)
	}
	sbr := bufio.NewReader(stall)
	if code, _, _ := readResponse(t, sbr); code != 200 {
		t.Fatal("stalled conn's completed request failed")
	}
	testutil.WaitFor(t, 5*time.Second, func() bool {
		return s.Admission().InflightHeaders == 0
	}, "header slot never released")
	late, lbr := dial(t, s)
	if _, err := late.Write([]byte("GET /late HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := readResponse(t, lbr); code != 200 {
		t.Fatal("fresh conn still shed after the slot freed")
	}
}

// TestOverloadSheds503: with every worker over its busy watermark,
// fresh connections get an immediate 503-with-Retry-After instead of
// queueing — and an established keep-alive connection is exempt.
func TestOverloadSheds503(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	s := start(t, Config{
		Workers:        1,
		Backlog:        16,
		HighPct:        25, // busy above depth 4
		LowPct:         5,  // EWMA must fall below 0.8 to clear: it won't during the test
		ShedOnOverload: true,
		RetryAfter:     2 * time.Second,
		Handler: func(ctx *RequestCtx) {
			if string(ctx.Path()) == "/block" {
				<-gate
			}
			ctx.Write(ctx.Path())
		},
	})
	t.Cleanup(func() { gateOnce.Do(func() { close(gate) }) })

	// An established conn before the storm: its later requests bypass
	// the overload gate.
	veteran, vbr := dial(t, s)
	if _, err := veteran.Write([]byte("GET /v HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := readResponse(t, vbr); code != 200 {
		t.Fatal("veteran conn first request failed")
	}

	// Wedge the only worker, then pile fresh connections into its
	// queue until the high watermark marks it busy.
	blocker, bbr := dial(t, s)
	if _, err := blocker.Write([]byte("GET /block HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	const floods = 8
	fconns := make([]net.Conn, floods)
	freaders := make([]*bufio.Reader, floods)
	for i := range fconns {
		c, br := dial(t, s)
		fconns[i], freaders[i] = c, br
		if _, err := c.Write([]byte("GET /flood HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
			t.Fatal(err)
		}
	}
	testutil.WaitFor(t, 5*time.Second, func() bool {
		for _, w := range s.Stats().Workers {
			if !w.Busy {
				return false
			}
		}
		return true
	}, "worker never crossed the busy watermark")

	// Release the worker: it drains the queue, and every queued fresh
	// conn it pops while still busy is shed. The EWMA was driven well
	// above the low watermark and nothing in the drain lowers it below,
	// so all of them shed.
	gateOnce.Do(func() { close(gate) })
	if code, _, _ := readResponse(t, bbr); code != 200 {
		t.Fatal("blocking request did not complete")
	}
	sheds := 0
	for i := range fconns {
		code, hdr, _ := readResponse(t, freaders[i])
		switch code {
		case 503:
			sheds++
			if hdr["retry-after"] != "2" {
				t.Errorf("flood %d: Retry-After = %q, want %q", i, hdr["retry-after"], "2")
			}
			if hdr["connection"] != "close" {
				t.Errorf("flood %d: overload 503 must close: %v", i, hdr)
			}
		case 200:
			// Admitted after the busy bit cleared: acceptable, but the
			// storm must have shed at least one.
		default:
			t.Fatalf("flood %d: unexpected status %d", i, code)
		}
	}
	if sheds == 0 {
		t.Error("no fresh connection was shed during overload")
	}
	if n := s.Admission().OverloadSheds; n != uint64(sheds) {
		t.Errorf("OverloadSheds = %d but %d conns observed a 503", n, sheds)
	}

	// The established conn rides through even while the busy bit is
	// still set (the low watermark keeps it latched).
	if _, err := veteran.Write([]byte("GET /v2 HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if code, _, body := readResponse(t, vbr); code != 200 || string(body) != "/v2" {
		t.Fatalf("established conn shed under overload: code %d body %q", code, body)
	}
}

// TestMetricsHandlerExposesAdmission: the Prometheus endpoint carries
// the admission counters alongside the serving stats.
func TestMetricsHandlerExposesAdmission(t *testing.T) {
	var srv *Server
	router := NewRouter()
	router.Handle("/metrics", func(ctx *RequestCtx) { MetricsHandler(srv)(ctx) })
	router.Handle("/", func(ctx *RequestCtx) { ctx.Write([]byte("ok")) })
	s := start(t, Config{Workers: 2, Handler: router.Serve, MaxConns: 64})
	srv = s

	conn, br := dial(t, s)
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: t\r\n\r\nGET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := readResponse(t, br); code != 200 {
		t.Fatal("warmup request failed")
	}
	code, hdr, body := readResponse(t, br)
	if code != 200 {
		t.Fatalf("/metrics: code %d", code)
	}
	if ct := hdr["content-type"]; ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content-type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE affinity_workers gauge",
		"affinity_workers 2",
		"# TYPE affinity_served_total counter",
		"# TYPE affinity_ratelimited_total counter",
		"# TYPE affinity_shed_parked_total counter",
		"# TYPE affinity_budget_rejected_total counter",
		"affinity_conn_budget 64",
		"# TYPE affinity_inflight_headers gauge",
		"affinity_header_timeouts_total{worker=\"0\"} 0",
		"affinity_header_sheds_total{worker=\"1\"} 0",
		"# TYPE affinity_overload_sheds_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
