package httpaff

import (
	"bytes"
	"testing"
)

// newTestCtx builds a context wired to a minimal server, no transport.
func newTestCtx() *RequestCtx {
	s := &Server{name: []byte("httpaff")}
	s.cfg.MaxHeaderBytes = 8192
	s.cfg.MaxBodyBytes = 1 << 20
	s.refreshDate()
	return &RequestCtx{srv: s, rbuf: make([]byte, 4096), wbuf: make([]byte, 0, 4096)}
}

// load primes the read buffer as if the bytes had arrived from the
// network, then parses the head directly.
func parseRaw(ctx *RequestCtx, raw string) error {
	copy(ctx.rbuf, raw)
	ctx.rlen = len(raw)
	ctx.rpos = 0
	end := bytes.Index(ctx.rbuf[:ctx.rlen], crlfCRLF)
	if end < 0 {
		panic("test request has no header terminator")
	}
	return ctx.parseHead(ctx.rbuf[:end+2])
}

func TestParseRequestLine(t *testing.T) {
	ctx := newTestCtx()
	if err := parseRaw(ctx, "GET /x/y?a=1&b=2 HTTP/1.1\r\nHost: h\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	if got := string(ctx.Method()); got != "GET" {
		t.Errorf("method %q", got)
	}
	if got := string(ctx.Path()); got != "/x/y" {
		t.Errorf("path %q", got)
	}
	if got := string(ctx.Query()); got != "a=1&b=2" {
		t.Errorf("query %q", got)
	}
	if got := string(ctx.URI()); got != "/x/y?a=1&b=2" {
		t.Errorf("uri %q", got)
	}
	if got := string(ctx.Protocol()); got != "HTTP/1.1" {
		t.Errorf("proto %q", got)
	}
	if !ctx.req.keepAlive {
		t.Error("HTTP/1.1 should default to keep-alive")
	}
}

func TestParseHeaders(t *testing.T) {
	ctx := newTestCtx()
	raw := "POST /u HTTP/1.1\r\n" +
		"Host: example.test\r\n" +
		"Content-Length:  42\r\n" +
		"X-Custom:\tspaced value \r\n" +
		"CONNECTION: Keep-Alive\r\n\r\n"
	if err := parseRaw(ctx, raw); err != nil {
		t.Fatal(err)
	}
	if got := string(ctx.Header("host")); got != "example.test" {
		t.Errorf("host %q", got)
	}
	if got := string(ctx.Header("x-custom")); got != "spaced value" {
		t.Errorf("x-custom %q", got)
	}
	if ctx.req.contentLength != 42 {
		t.Errorf("content-length %d", ctx.req.contentLength)
	}
	if !ctx.req.keepAlive {
		t.Error("explicit Keep-Alive ignored")
	}
	if got := ctx.Header("absent"); got != nil {
		t.Errorf("absent header = %q, want nil", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want *protoError
	}{
		{"no spaces", "GARBAGE\r\n\r\n", errBadRequest},
		{"one space", "GET /\r\n\r\n", errBadRequest},
		{"empty uri", "GET  HTTP/1.1\r\n\r\n", errBadRequest},
		{"bad version", "GET / SPDY/3\r\n\r\n", errBadVersion},
		{"header without colon", "GET / HTTP/1.1\r\nbroken\r\n\r\n", errBadRequest},
		{"bad content length", "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", errBadRequest},
		{"huge content length", "GET / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n", errBadRequest},
		{"chunked", "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", errChunked},
		{"empty content length", "GET / HTTP/1.1\r\nContent-Length:\r\n\r\n", errBadRequest},
		{"signed content length", "GET / HTTP/1.1\r\nContent-Length: +5\r\n\r\n", errBadRequest},
		{"comma content length", "GET / HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\n", errBadRequest},
		{"hex content length", "GET / HTTP/1.1\r\nContent-Length: 0x20\r\n\r\n", errBadRequest},
		{"duplicate content length, same value",
			"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n", errBadRequest},
		{"duplicate content length, different values",
			"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 40\r\n\r\n", errBadRequest},
		{"duplicate content length, folded case",
			"POST / HTTP/1.1\r\ncontent-length: 4\r\nCONTENT-LENGTH: 9\r\n\r\n", errBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := newTestCtx()
			if err := parseRaw(ctx, tc.raw); err != tc.want {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestHTTP10KeepAliveOptIn(t *testing.T) {
	ctx := newTestCtx()
	if err := parseRaw(ctx, "GET / HTTP/1.0\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	if ctx.req.keepAlive {
		t.Error("HTTP/1.0 should default to close")
	}
	if err := parseRaw(ctx, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	if !ctx.req.keepAlive {
		t.Error("HTTP/1.0 with Connection: keep-alive should keep alive")
	}
}

func TestHelpers(t *testing.T) {
	if !equalFold([]byte("Content-LENGTH"), "content-length") {
		t.Error("equalFold should fold ASCII case")
	}
	if equalFold([]byte("abc"), "abd") || equalFold([]byte("ab"), "abc") {
		t.Error("equalFold false positives")
	}
	if got := string(trimOWS([]byte("\t  x y \t"))); got != "x y" {
		t.Errorf("trimOWS = %q", got)
	}
	if n, ok := parseUint([]byte("1234")); !ok || n != 1234 {
		t.Errorf("parseUint(1234) = %d, %v", n, ok)
	}
	for _, bad := range []string{"", "12a", "-1", "99999999999999999999"} {
		if _, ok := parseUint([]byte(bad)); ok {
			t.Errorf("parseUint(%q) accepted", bad)
		}
	}
	// Overflow boundary: the parser caps at 2^30, and — crucially — must
	// not wrap around into a small accepted value on 64-bit overflow
	// territory ("18446744073709551617" would wrap to 1 in uint64 math).
	if n, ok := parseUint([]byte("1073741824")); !ok || n != 1<<30 {
		t.Errorf("parseUint(2^30) = %d, %v; want accepted", n, ok)
	}
	for _, bad := range []string{"1073741825", "18446744073709551617"} {
		if n, ok := parseUint([]byte(bad)); ok {
			t.Errorf("parseUint(%q) accepted as %d, want overflow rejection", bad, n)
		}
	}
}

// TestParseZeroAlloc pins the zero-copy claim: once the header slice
// capacity is warm, parsing a request performs no allocations at all.
func TestParseZeroAlloc(t *testing.T) {
	ctx := newTestCtx()
	raw := "GET /hot/path?q=1 HTTP/1.1\r\nHost: bench.test\r\nUser-Agent: alloc-test\r\nAccept: */*\r\n\r\n"
	if err := parseRaw(ctx, raw); err != nil { // warm the header slice
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := parseRaw(ctx, raw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("parse allocates %.1f objects per request, want 0", allocs)
	}
}

// TestSerializeZeroAlloc pins the response side: serializing a response
// into a warm write buffer performs no allocations.
func TestSerializeZeroAlloc(t *testing.T) {
	ctx := newTestCtx()
	if err := parseRaw(ctx, "GET / HTTP/1.1\r\nHost: t\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	body := []byte("hello, core-local world")
	render := func() {
		ctx.resp.reset()
		ctx.SetHeader("X-Trace", "abc123")
		ctx.Write(body)
		ctx.appendResponse(false)
		ctx.wbuf = ctx.wbuf[:0]
	}
	render() // warm wbuf, body and extra capacities
	if allocs := testing.AllocsPerRun(200, render); allocs != 0 {
		t.Fatalf("serialize allocates %.1f objects per response, want 0", allocs)
	}
}
