package httpaff

import (
	"encoding/json"
	"net/http"

	"affinityaccept/serve"
)

// statsPayload is the JSON shape StatsHandler serves: the raw
// serve.Stats snapshot plus the derived percentages dashboards and the
// bench tooling want without re-deriving them client-side.
type statsPayload struct {
	serve.Stats
	LocalityPct      float64 `json:"localityPct"`
	StealPct         float64 `json:"stealPct"`
	PoolReusePct     float64 `json:"poolReusePct"`
	UpstreamReusePct float64 `json:"upstreamReusePct"`
}

// StatsHandler returns a handler serving srv's live Stats snapshot as
// JSON — locality, steals, migrations, requeues, the worker-local
// request-memory pool counters and (when a proxy wires
// Config.WorkerUpstream) the upstream connection-pool counters, with
// the per-worker breakdown. Mount it on a Router path (conventionally
// "/_stats") so the edge's core-locality can be scraped while it
// serves; this endpoint is diagnostic, not hot-path, and allocates.
func StatsHandler(srv *serve.Server) HandlerFunc {
	return func(ctx *RequestCtx) {
		st := srv.Stats()
		out, err := json.Marshal(statsPayload{
			Stats:            st,
			LocalityPct:      st.LocalityPct(),
			StealPct:         st.StealPct(),
			PoolReusePct:     st.Pool.ReusePct(),
			UpstreamReusePct: st.Upstream.ReusePct(),
		})
		if err != nil {
			ctx.SetStatus(http.StatusInternalServerError)
			return
		}
		ctx.SetContentType("application/json")
		ctx.Write(out)
	}
}
