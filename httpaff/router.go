package httpaff

import "net/http"

// Router dispatches requests by exact path match. Lookup is a single
// map index keyed by the request path — Go's map[string] index with a
// []byte conversion does not allocate, so routing stays on the
// zero-allocation path.
type Router struct {
	routes   map[string]HandlerFunc
	notFound HandlerFunc
}

// NewRouter returns an empty router whose fallback answers 404.
func NewRouter() *Router {
	return &Router{
		routes: make(map[string]HandlerFunc),
		notFound: func(ctx *RequestCtx) {
			ctx.SetStatus(http.StatusNotFound)
		},
	}
}

// Handle registers the handler for an exact path. Registration is
// setup-time only: it must not race Serve.
func (r *Router) Handle(path string, h HandlerFunc) {
	r.routes[path] = h
}

// NotFound replaces the fallback handler.
func (r *Router) NotFound(h HandlerFunc) { r.notFound = h }

// Serve dispatches one request; use it as Config.Handler.
func (r *Router) Serve(ctx *RequestCtx) {
	if h, ok := r.routes[string(ctx.Path())]; ok {
		h(ctx)
		return
	}
	r.notFound(ctx)
}
