package httpaff

import "net/http"

// route is one path's registration: an optional any-method handler plus
// method-specific handlers with the precomputed Allow header value a
// 405 response advertises.
type route struct {
	any     HandlerFunc
	methods []methodRoute
	allow   string // "GET, POST" — registration order
}

type methodRoute struct {
	method string // canonical uppercase, e.g. "GET"
	h      HandlerFunc
}

// Router dispatches requests by exact path match, then by method.
// Lookup is a single map index keyed by the request path — Go's
// map[string] index with a []byte conversion does not allocate — plus a
// linear scan of the few registered methods, so routing stays on the
// zero-allocation path.
type Router struct {
	routes   map[string]*route
	notFound HandlerFunc
}

// NewRouter returns an empty router whose fallback answers 404.
func NewRouter() *Router {
	return &Router{
		routes: make(map[string]*route),
		notFound: func(ctx *RequestCtx) {
			ctx.SetStatus(http.StatusNotFound)
		},
	}
}

func (r *Router) route(path string) *route {
	e, ok := r.routes[path]
	if !ok {
		e = &route{}
		r.routes[path] = e
	}
	return e
}

// Handle registers the handler for an exact path, serving every method
// that has no HandleMethod registration of its own. Registration is
// setup-time only: it must not race Serve.
func (r *Router) Handle(path string, h HandlerFunc) {
	r.route(path).any = h
}

// HandleMethod registers the handler for an exact path and method
// (case-sensitive, canonical uppercase per RFC 9110: "GET", "POST",
// ...). A GET registration also serves HEAD (the server suppresses the
// body and keeps the Content-Length, per RFC 9110 §9.3.2) unless an
// explicit HEAD handler is registered. A request for a path that has
// method registrations but matches none of them — and has no Handle
// fallback — is answered 405 with an Allow header listing the
// registered methods. Registration is setup-time only: it must not
// race Serve.
func (r *Router) HandleMethod(method, path string, h HandlerFunc) {
	e := r.route(path)
	for i := range e.methods {
		if e.methods[i].method == method {
			e.methods[i].h = h // re-registration replaces
			return
		}
	}
	e.methods = append(e.methods, methodRoute{method: method, h: h})
	if e.allow == "" {
		e.allow = method
	} else {
		e.allow += ", " + method
	}
}

// NotFound replaces the fallback handler.
func (r *Router) NotFound(h HandlerFunc) { r.notFound = h }

// Serve dispatches one request; use it as Config.Handler.
func (r *Router) Serve(ctx *RequestCtx) {
	e, ok := r.routes[string(ctx.Path())]
	if !ok {
		r.notFound(ctx)
		return
	}
	m := ctx.Method()
	for i := range e.methods {
		if string(m) == e.methods[i].method {
			e.methods[i].h(ctx)
			return
		}
	}
	// HEAD falls back to the GET handler: the serializer already
	// suppresses the body while keeping its Content-Length.
	if string(m) == "HEAD" {
		for i := range e.methods {
			if e.methods[i].method == "GET" {
				e.methods[i].h(ctx)
				return
			}
		}
	}
	if e.any != nil {
		e.any(ctx)
		return
	}
	ctx.SetStatus(http.StatusMethodNotAllowed)
	ctx.SetHeader("Allow", e.allow)
}
