package httpaff

import (
	"bytes"
	"context"
	"io"
	"net"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// benchBody is what the benchmark handler serves; fixed size so every
// response has identical length and the client can read batches with
// one ReadFull.
var benchBody = []byte("hello from the core-local fast path!")

func benchHandler(ctx *RequestCtx) { ctx.Write(benchBody) }

// startBench builds a server + one warm keep-alive connection and
// returns them with the exact response length, learned from one
// warm-up exchange.
func startBench(tb testing.TB) (*Server, net.Conn, int) {
	tb.Helper()
	s, err := New(Config{Workers: 2, Handler: benchHandler})
	if err != nil {
		tb.Fatal(err)
	}
	s.Start()
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(5 * time.Minute))

	// Warm-up exchange: learn the (fixed) response size.
	if _, err := conn.Write(benchRequest); err != nil {
		tb.Fatal(err)
	}
	buf := make([]byte, 4096)
	n := 0
	for {
		m, err := conn.Read(buf[n:])
		if err != nil {
			tb.Fatal(err)
		}
		n += m
		if i := bytes.Index(buf[:n], []byte("\r\n\r\n")); i >= 0 {
			clStart := bytes.Index(buf[:i], []byte("Content-Length: "))
			if clStart < 0 {
				tb.Fatalf("no Content-Length in %q", buf[:i])
			}
			clEnd := bytes.IndexByte(buf[clStart:], '\r') + clStart
			cl, err := strconv.Atoi(string(buf[clStart+len("Content-Length: ") : clEnd]))
			if err != nil {
				tb.Fatal(err)
			}
			total := i + 4 + cl
			for n < total {
				m, err := conn.Read(buf[n:])
				if err != nil {
					tb.Fatal(err)
				}
				n += m
			}
			if n != total {
				tb.Fatalf("warm-up read %d bytes, want %d", n, total)
			}
			return s, conn, total
		}
	}
}

var benchRequest = []byte("GET /bench HTTP/1.1\r\nHost: bench\r\nUser-Agent: affinity-bench\r\n\r\n")

// pipelineDepth is how many requests each benchmark batch carries. The
// one allocation left on the serving path — the park-goroutine closure
// when a drained connection requeues — amortizes across the batch.
const pipelineDepth = 64

// BenchmarkPipelinedKeepAlive is the acceptance benchmark: pipelined
// keep-alive HTTP/1.1 over real loopback TCP, measured process-wide —
// client, workers, parser, serializer, requeue path. It asserts the
// steady-state path allocates zero objects per request (the assertion
// engages once b.N is large enough to be steady state; tiny -benchtime
// runs measure startup, not the claim).
func BenchmarkPipelinedKeepAlive(b *testing.B) {
	_, conn, respLen := startBench(b)
	batchReq := bytes.Repeat(benchRequest, pipelineDepth)
	batchResp := make([]byte, respLen*pipelineDepth)

	// One full batch outside the window warms the arena, the park
	// wrapper and the client buffers.
	if _, err := conn.Write(batchReq); err != nil {
		b.Fatal(err)
	}
	if _, err := io.ReadFull(conn, batchResp); err != nil {
		b.Fatal(err)
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ReportAllocs()
	b.ResetTimer()
	for served := 0; served < b.N; {
		depth := pipelineDepth
		if remaining := b.N - served; remaining < depth {
			depth = remaining
		}
		if _, err := conn.Write(batchReq[:depth*len(benchRequest)]); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, batchResp[:depth*respLen]); err != nil {
			b.Fatal(err)
		}
		served += depth
	}
	b.StopTimer()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if b.N >= 1000 {
		perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N)
		if perOp >= 1 {
			b.Fatalf("%.2f allocs per request on the steady-state path, want 0", perOp)
		}
	}
}

// BenchmarkSequentialKeepAlive measures the unpipelined round trip —
// every request parks and requeues the connection, so this is the
// latency (not throughput) shape of the keep-alive path.
func BenchmarkSequentialKeepAlive(b *testing.B) {
	_, conn, respLen := startBench(b)
	resp := make([]byte, respLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(benchRequest); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseRequest isolates the parser: one fully buffered
// request, no transport.
func BenchmarkParseRequest(b *testing.B) {
	ctx := newTestCtx()
	raw := "GET /hot/path?q=1 HTTP/1.1\r\nHost: bench.test\r\nUser-Agent: affinity-bench\r\nAccept: */*\r\n\r\n"
	copy(ctx.rbuf, raw)
	end := bytes.Index(ctx.rbuf[:len(raw)], crlfCRLF)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.parseHead(ctx.rbuf[:end+2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerializeResponse isolates the response writer.
func BenchmarkSerializeResponse(b *testing.B) {
	ctx := newTestCtx()
	copy(ctx.rbuf, "GET / HTTP/1.1\r\n\r\n")
	if err := ctx.parseHead(ctx.rbuf[:16]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.resp.reset()
		ctx.Write(benchBody)
		ctx.appendResponse(false)
		ctx.wbuf = ctx.wbuf[:0]
	}
}

// TestSteadyStateZeroAlloc enforces the benchmark's claim in a plain
// test run, where CI's small -benchtime cannot: a thousand pipelined
// requests after warm-up allocate fewer than one object per request
// process-wide.
func TestSteadyStateZeroAlloc(t *testing.T) {
	_, conn, respLen := startBench(t)
	const depth, batches = 50, 20
	batchReq := bytes.Repeat(benchRequest, depth)
	batchResp := make([]byte, respLen*depth)
	roundTrip := func() {
		if _, err := conn.Write(batchReq); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(conn, batchResp); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: arena, park wrapper, client path.
	roundTrip()
	roundTrip()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < batches; i++ {
		roundTrip()
	}
	runtime.ReadMemStats(&after)
	perReq := float64(after.Mallocs-before.Mallocs) / float64(depth*batches)
	if perReq >= 1 {
		t.Fatalf("steady-state path allocates %.2f objects per request, want 0 "+
			"(total %d mallocs over %d requests)", perReq, after.Mallocs-before.Mallocs, depth*batches)
	}
	t.Logf("steady state: %.3f allocs/request (%d mallocs over %d requests)",
		perReq, after.Mallocs-before.Mallocs, depth*batches)
}
