package httpaff

import "affinityaccept/internal/stats"

// arena is one worker's private pool of RequestCtx objects. It is
// deliberately NOT a sync.Pool: a process-wide pool lets any worker
// drain an object whose buffers live in another core's cache, which is
// the application-layer version of the cross-core connection handoff
// the paper is built to avoid. An arena has no lock because it needs
// none — serve runs WorkerHandler inline on the worker goroutine, so
// arena i is only ever touched from worker i. The counters are atomic
// solely so Stats can observe them from outside.
//
// The worker model also bounds the arena's working set: a worker
// serves one connection at a time, so after the first pass its arena
// holds exactly one warm context and every later acquire is a reuse.
// The reuse rate in serve.Stats.Pool is therefore a direct measurement
// of how core-local request memory stays.
type arena struct {
	s        *Server
	free     []*RequestCtx
	counters stats.PoolCounters
}

// retainCap is the largest buffer the arena keeps on release; a context
// that ballooned serving an outlier request is shed back to the
// steady-state size instead of pinning the memory forever.
const retainCap = 64 << 10

// acquire pops a warm context or allocates a cold one.
func (a *arena) acquire() *RequestCtx {
	if n := len(a.free); n > 0 {
		ctx := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.counters.Reuse()
		return ctx
	}
	a.counters.Miss()
	return &RequestCtx{
		srv:  a.s,
		rbuf: make([]byte, a.s.cfg.ReadBufferSize),
		wbuf: make([]byte, 0, a.s.cfg.WriteBufferSize),
	}
}

// release returns a finished context to the free list, shedding
// oversized buffers, or drops it when the list is full.
func (a *arena) release(ctx *RequestCtx) {
	if len(a.free) >= a.s.cfg.MaxPooledPerWorker {
		a.counters.Drop()
		return
	}
	if cap(ctx.rbuf) > retainCap {
		ctx.rbuf = make([]byte, a.s.cfg.ReadBufferSize)
	}
	if cap(ctx.wbuf) > retainCap {
		ctx.wbuf = make([]byte, 0, a.s.cfg.WriteBufferSize)
	}
	if cap(ctx.resp.body) > retainCap {
		ctx.resp.body = nil
	}
	a.free = append(a.free, ctx)
}
